"""An addressable max-heap with lazy invalidation.

Every SURGE detector needs the same bookkeeping primitive: a collection of
keys (grid cells) whose priority (upper bound or burst score) changes on
every stream event, together with an efficient way to read or pop the key
with the largest priority.  Re-heapifying on every update would defeat the
point of the lazy-update strategy, so the heap keeps stale entries around and
skips them when they surface — the standard "lazy deletion" technique.

The structure supports:

* ``push(key, priority)`` — insert or update a key,
* ``push_all(pairs)`` — bulk insert/update with one compaction pass,
* ``remove(key)`` — delete a key,
* ``peek()`` / ``pop()`` — the key with the maximum priority,
* ``priority_of(key)`` and iteration over live ``(key, priority)`` pairs,
* ``top_n(n)`` — the ``n`` largest entries (used by the top-k detectors).

All operations other than ``top_n`` are ``O(log m)`` amortised where ``m`` is
the number of pushes since the last compaction; the heap compacts itself when
more than half of its entries are stale.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)


class LazyMaxHeap(Generic[K]):
    """Addressable max-heap keyed by arbitrary hashable keys."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, K]] = []
        self._priorities: dict[K, float] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, key: K, priority: float) -> None:
        """Insert ``key`` or update its priority."""
        self._priorities[key] = priority
        self._counter += 1
        heapq.heappush(self._heap, (-priority, self._counter, key))
        self._maybe_compact()

    def push_all(self, items: "Iterable[tuple[K, float]]") -> None:
        """Insert or update many ``(key, priority)`` pairs in one pass.

        Equivalent to calling :meth:`push` per pair but with a single
        compaction check at the end, and — when the batch is large relative
        to the heap — one O(m) ``heapify`` instead of m ``heappush`` sifts.
        The batched detectors use this to refresh every dirty cell's bound
        with one call per event batch.
        """
        added = list(items)
        if not added:
            return
        priorities = self._priorities
        heap = self._heap
        if len(added) * 8 >= len(heap) + len(added):
            # Large batch: append everything and re-heapify once.
            for key, priority in added:
                priorities[key] = priority
                self._counter += 1
                heap.append((-priority, self._counter, key))
            heapq.heapify(heap)
        else:
            for key, priority in added:
                priorities[key] = priority
                self._counter += 1
                heapq.heappush(heap, (-priority, self._counter, key))
        self._maybe_compact()

    def remove(self, key: K) -> None:
        """Remove ``key`` from the heap (no-op if absent).

        The underlying heap entry becomes stale rather than being deleted, so
        a remove-heavy workload must trigger the same compaction check as
        ``push`` — otherwise stale entries accumulate without bound.
        """
        if self._priorities.pop(key, None) is not None:
            self._maybe_compact()

    def pop(self) -> tuple[K, float]:
        """Remove and return the ``(key, priority)`` pair with maximum priority.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        while self._heap:
            neg_priority, _, key = heapq.heappop(self._heap)
            current = self._priorities.get(key)
            if current is not None and current == -neg_priority:
                del self._priorities[key]
                return key, current
        raise IndexError("pop from an empty LazyMaxHeap")

    def clear(self) -> None:
        """Remove every entry."""
        self._heap.clear()
        self._priorities.clear()
        self._counter = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def peek(self) -> tuple[K, float] | None:
        """The ``(key, priority)`` pair with maximum priority, or ``None`` if empty."""
        while self._heap:
            neg_priority, _, key = self._heap[0]
            current = self._priorities.get(key)
            if current is not None and current == -neg_priority:
                return key, current
            heapq.heappop(self._heap)
        return None

    def priority_of(self, key: K, default: float | None = None) -> float | None:
        """The current priority of ``key``, or ``default`` if absent."""
        return self._priorities.get(key, default)

    def top_n(self, n: int) -> list[tuple[K, float]]:
        """The ``n`` live entries with the largest priorities, sorted descending.

        This is an ``O(m log m)`` scan over live entries; the top-k detectors
        call it with small ``n`` on every event, which is acceptable because
        ``m`` is the number of *non-empty* cells, and in practice it is far
        smaller than the number of objects.
        """
        if n <= 0:
            return []
        ordered = sorted(self._priorities.items(), key=lambda item: -item[1])
        return ordered[:n]

    def __contains__(self, key: K) -> bool:
        return key in self._priorities

    def __len__(self) -> int:
        return len(self._priorities)

    def __iter__(self) -> Iterator[tuple[K, float]]:
        """Iterate over live ``(key, priority)`` pairs in arbitrary order."""
        return iter(self._priorities.items())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the underlying heap when most entries are stale."""
        if len(self._heap) > 64 and len(self._heap) > 2 * len(self._priorities):
            self._counter = 0
            rebuilt = []
            for key, priority in self._priorities.items():
                self._counter += 1
                rebuilt.append((-priority, self._counter, key))
            heapq.heapify(rebuilt)
            self._heap = rebuilt
