"""Planar primitives: points and axis-aligned rectangles.

Conventions used throughout the library
---------------------------------------

* Coordinates are plain floats in an arbitrary planar coordinate system
  (the datasets use longitude on the x axis and latitude on the y axis, but
  nothing in the algorithms depends on that interpretation).
* Rectangles are **closed** on all four edges: a point lying exactly on an
  edge is considered covered.  The paper is agnostic about boundary
  semantics; using closed rectangles everywhere keeps the reduction of
  Theorem 1 exact (a spatial object on the boundary of a region corresponds
  to a rectangle object whose boundary touches the query point).
* The query rectangle has size ``a × b`` where ``a`` is the extent along x
  and ``b`` the extent along y.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"degenerate rectangle: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def bottom_left(self) -> Point:
        """The ``(min_x, min_y)`` corner."""
        return Point(self.min_x, self.min_y)

    @property
    def top_right(self) -> Point:
        """The ``(max_x, max_y)`` corner."""
        return Point(self.max_x, self.max_y)

    @property
    def center(self) -> Point:
        """The centroid of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside the (closed) rectangle."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_xy(self, x: float, y: float) -> bool:
        """Whether the coordinates ``(x, y)`` lie inside the rectangle."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is fully contained in this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersects_interior(self, other: "Rect") -> bool:
        """Whether the two rectangles share an area of positive measure."""
        return (
            self.min_x < other.max_x
            and other.min_x < self.max_x
            and self.min_y < other.max_y
            and other.min_y < self.max_y
        )

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """The intersection rectangle, or ``None`` if the two are disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union_bounds(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy translated by ``(dx, dy)``."""
        return Rect(self.min_x + dx, self.min_y + dy, self.max_x + dx, self.max_y + dy)

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clamp_point(self, point: Point) -> Point:
        """Return the point of the rectangle closest to ``point``."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def corners(self) -> Iterator[Point]:
        """Yield the four corners in counter-clockwise order."""
        yield Point(self.min_x, self.min_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
        yield Point(self.min_x, self.max_y)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)


def rect_from_bottom_left(corner: Point, width: float, height: float) -> Rect:
    """Build the rectangle of size ``width × height`` with ``corner`` at the bottom-left.

    This is the mapping used by the SURGE → CSPOT reduction: each spatial
    object becomes a rectangle object whose bottom-left corner is the object
    location (Section IV-A of the paper).
    """
    if width < 0 or height < 0:
        raise ValueError("width and height must be non-negative")
    return Rect(corner.x, corner.y, corner.x + width, corner.y + height)


def rect_from_top_right(corner: Point, width: float, height: float) -> Rect:
    """Build the rectangle of size ``width × height`` with ``corner`` at the top-right.

    This is the inverse mapping of Theorem 1: a bursty *point* is the
    top-right corner of the reported bursty *region*.

    Note that the naive ``corner - extent`` subtraction used here can round
    to a different float than the forward ``object + extent`` mapping; use
    :func:`region_covering_point` when the region must faithfully contain
    every object whose rectangle covers the corner (edge ties).
    """
    if width < 0 or height < 0:
        raise ValueError("width and height must be non-negative")
    return Rect(corner.x - width, corner.y - height, corner.x, corner.y)


def _covering_min_edge(corner: float, extent: float) -> float:
    """Smallest float ``m`` with ``m + extent >= corner`` under float addition.

    ``fl(z + extent)`` is monotone non-decreasing in ``z``, so the floats
    satisfying the predicate form an up-closed set ``[m, +inf)``; this finds
    its minimum.  ``corner - extent`` is the obvious guess, but rounding can
    push it one side or the other of the true threshold — which is exactly
    the edge-tie reporting caveat this function exists to remove.
    """
    if extent == 0.0:
        return corner
    if not (math.isfinite(corner) and math.isfinite(extent)):
        # Non-finite inputs have no meaningful ulp neighbourhood to search
        # (and would make the bisection midpoints NaN); fall back to the
        # naive subtraction instead of looping forever.
        return corner - extent
    guess = corner - extent
    if guess + extent >= corner:
        hi = guess
        lo = math.nextafter(guess, -math.inf)
        if lo + extent < corner:
            return hi  # the common, tie-free case: settled by one ulp probe
    else:
        lo = guess
        hi = math.nextafter(guess, math.inf)
    # Bracket the threshold (the flip point is within a few rounding errors
    # of the guess, but near cancellation those errors can span many ulps of
    # the small result, so widen geometrically instead of ulp-stepping).
    span = math.ulp(max(abs(corner), abs(extent), abs(guess)))
    while lo + extent >= corner:
        lo = guess - span
        span *= 2.0
    span = math.ulp(max(abs(corner), abs(extent), abs(guess)))
    while hi + extent < corner:
        hi = guess + span
        span *= 2.0
    # Binary search down to adjacent floats; ``hi`` always satisfies.
    while True:
        mid = lo + (hi - lo) / 2.0
        if mid <= lo or mid >= hi:
            return hi
        if mid + extent >= corner:
            hi = mid
        else:
            lo = mid


def region_covering_point(point: Point, width: float, height: float) -> Rect:
    """The faithful bursty region of size ``~width × ~height`` below ``point``.

    Like :func:`rect_from_top_right`, but the bottom-left corner is chosen so
    that closed-rectangle membership matches CSPOT coverage *exactly*: an
    object at ``(x, y)`` lies inside the returned region **iff** its
    rectangle object ``[x, x + width] × [y, y + height]`` covers ``point``
    under the same floating-point arithmetic (``object + extent``, the side
    the sweep kernels count).  When the optimal point lies exactly on a
    rectangle edge, the naive ``point - extent`` subtraction can round to
    just above the boundary object's coordinate and silently exclude weight
    the reported score legitimately counts; the edges returned here are off
    the naive ones by at most a few ulps, in whichever direction makes the
    region lossless.
    """
    if width < 0 or height < 0:
        raise ValueError("width and height must be non-negative")
    return Rect(
        _covering_min_edge(point.x, width),
        _covering_min_edge(point.y, height),
        point.x,
        point.y,
    )
