"""Regular grids over the plane.

Both the exact detector (Cell-CSPOT) and the approximate detectors
(GAP-SURGE, MGAP-SURGE) impose a regular grid whose cells have exactly the
query-rectangle size ``a × b``.  The grid of Definition 6 of the paper is
anchored at the origin; MGAP-SURGE additionally uses three grids shifted by
half a cell along x, y, and both axes.

A grid is represented by an immutable :class:`GridSpec`; cells are addressed
by an integer pair :class:`CellIndex` ``(ix, iy)`` such that cell ``(ix, iy)``
covers ``[origin_x + ix·cell_width, origin_x + (ix+1)·cell_width] ×
[origin_y + iy·cell_height, origin_y + (iy+1)·cell_height]``.

The grid is conceptually infinite — only non-empty cells are ever
materialised by the detectors — so no bounding box needs to be declared up
front, which matches the streaming setting where object locations are not
known a priori.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.geometry.primitives import Point, Rect

#: A cell address ``(ix, iy)`` within a :class:`GridSpec`.
CellIndex = tuple[int, int]


@dataclass(frozen=True, slots=True)
class GridSpec:
    """An infinite regular grid.

    Parameters
    ----------
    cell_width, cell_height:
        Size of every cell.  The SURGE detectors use the query-rectangle
        size ``a × b`` so that a rectangle object overlaps at most four
        cells (Lemma 1 of the paper).
    origin_x, origin_y:
        Coordinates of the corner of cell ``(0, 0)``.  MGAP-SURGE uses
        origins shifted by half a cell.
    """

    cell_width: float
    cell_height: float
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        if self.cell_width <= 0 or self.cell_height <= 0:
            raise ValueError("cell dimensions must be positive")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def cell_of(self, x: float, y: float) -> CellIndex:
        """The cell containing the point ``(x, y)``.

        Points on a shared edge are assigned to the cell with the larger
        index (half-open addressing), so every point belongs to exactly one
        cell — this is the property the GAP-SURGE accumulators rely on.
        """
        ix = math.floor((x - self.origin_x) / self.cell_width)
        iy = math.floor((y - self.origin_y) / self.cell_height)
        return (ix, iy)

    def cell_of_point(self, point: Point) -> CellIndex:
        """The cell containing ``point``."""
        return self.cell_of(point.x, point.y)

    def cell_rect(self, index: CellIndex) -> Rect:
        """The closed rectangle covered by cell ``index``."""
        ix, iy = index
        min_x = self.origin_x + ix * self.cell_width
        min_y = self.origin_y + iy * self.cell_height
        return Rect(min_x, min_y, min_x + self.cell_width, min_y + self.cell_height)

    def cells_overlapping(self, rect: Rect) -> Iterator[CellIndex]:
        """All cells whose closed extent intersects ``rect``.

        For a rectangle object of exactly the cell size this yields at most
        four cells when the rectangle is in general position, and up to nine
        when its edges are exactly aligned with grid lines (the closed/closed
        intersection then touches neighbouring cells along a zero-area strip).
        The detectors treat the list as "cells possibly affected", so the
        aligned case only costs a little extra work and never correctness.
        """
        first_ix = math.floor((rect.min_x - self.origin_x) / self.cell_width)
        last_ix = math.floor((rect.max_x - self.origin_x) / self.cell_width)
        first_iy = math.floor((rect.min_y - self.origin_y) / self.cell_height)
        last_iy = math.floor((rect.max_y - self.origin_y) / self.cell_height)
        for ix in range(first_ix, last_ix + 1):
            for iy in range(first_iy, last_iy + 1):
                yield (ix, iy)

    def shifted(self, dx_cells: float, dy_cells: float) -> "GridSpec":
        """A grid identical to this one with the origin shifted by a cell fraction.

        ``dx_cells`` and ``dy_cells`` are expressed as fractions of the cell
        size; MGAP-SURGE uses shifts of ``0.5``.
        """
        return GridSpec(
            cell_width=self.cell_width,
            cell_height=self.cell_height,
            origin_x=self.origin_x + dx_cells * self.cell_width,
            origin_y=self.origin_y + dy_cells * self.cell_height,
        )

    def mgap_family(self) -> tuple["GridSpec", "GridSpec", "GridSpec", "GridSpec"]:
        """The four grids used by MGAP-SURGE (Section V-B of the paper).

        Grid 1 is this grid; grids 2–4 are shifted by half a cell along x,
        y, and both axes respectively.
        """
        return (
            self,
            self.shifted(0.5, 0.0),
            self.shifted(0.0, 0.5),
            self.shifted(0.5, 0.5),
        )


def cell_of_point(grid: GridSpec, point: Point) -> CellIndex:
    """Module-level convenience wrapper for :meth:`GridSpec.cell_of_point`."""
    return grid.cell_of_point(point)


def cells_overlapping_rect(grid: GridSpec, rect: Rect) -> list[CellIndex]:
    """Module-level convenience wrapper returning a list of overlapping cells."""
    return list(grid.cells_overlapping(rect))
