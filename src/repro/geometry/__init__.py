"""Geometry substrate used by every SURGE detector.

The SURGE algorithms only need a handful of geometric primitives — points,
axis-aligned rectangles, regular grids (optionally shifted), and an
addressable lazy max-heap used to rank grid cells by their upper bounds.
They are implemented here from scratch so that the rest of the library has
no geometric dependencies.
"""

from repro.geometry.primitives import (
    Point,
    Rect,
    rect_from_bottom_left,
    rect_from_top_right,
    region_covering_point,
)
from repro.geometry.grids import GridSpec, CellIndex, cell_of_point, cells_overlapping_rect
from repro.geometry.heaps import LazyMaxHeap

__all__ = [
    "Point",
    "Rect",
    "rect_from_bottom_left",
    "rect_from_top_right",
    "region_covering_point",
    "GridSpec",
    "CellIndex",
    "cell_of_point",
    "cells_overlapping_rect",
    "LazyMaxHeap",
]
