"""Unit tests for the command-line interface."""

import random

import pytest

from repro.cli import main
from repro.datasets.io import load_stream, write_csv_stream
from repro.streams.objects import SpatialObject


def _numpy_importable() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


#: ``generate`` needs the optional numpy dependency; ``run`` must not.
needs_numpy = pytest.mark.skipif(
    not _numpy_importable(),
    reason="the generate command needs numpy (pip install .[fast])",
)


class TestGenerateCommand:
    @needs_numpy
    def test_generate_csv(self, tmp_path, capsys):
        out = tmp_path / "taxi.csv"
        code = main(
            ["generate", "--profile", "taxi", "--objects", "200", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        stream = load_stream(out)
        assert len(stream) >= 200
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    @needs_numpy
    def test_generate_jsonl_without_bursts(self, tmp_path):
        out = tmp_path / "uk.jsonl"
        code = main(
            [
                "generate",
                "--profile",
                "uk",
                "--objects",
                "150",
                "--no-bursts",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert len(load_stream(out)) == 150

    def test_generate_rejects_unknown_extension(self, tmp_path, capsys):
        out = tmp_path / "stream.xyz"
        code = main(["generate", "--objects", "10", "--out", str(out)])
        assert code == 1
        assert "must end in" in capsys.readouterr().err

    def test_generate_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--profile", "mars", "--out", str(tmp_path / "x.csv")])


class TestRunCommand:
    def _make_stream(self, tmp_path):
        # Built directly (not via the generate command) so the run-command
        # tests also cover the numpy-free install.
        out = tmp_path / "stream.csv"
        rng = random.Random(20180416)
        write_csv_stream(
            out,
            [
                SpatialObject(
                    x=rng.uniform(0.0, 0.1),
                    y=rng.uniform(0.0, 0.1),
                    timestamp=float(index * 10),
                    weight=rng.uniform(0.5, 5.0),
                    object_id=index,
                )
                for index in range(300)
            ],
        )
        return out

    def test_run_prints_reports(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "run",
                str(stream_path),
                "--algorithm",
                "gaps",
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--report-every",
                "100",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "score=" in captured.out
        assert "events" in captured.err

    def test_run_top_k(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "run",
                str(stream_path),
                "--algorithm",
                "kgaps",
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--k",
                "3",
                "--report-every",
                "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The final report lists up to three regions separated by semicolons.
        assert out.strip().splitlines()[-1].count("score=") >= 1

    def test_run_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text("timestamp,x,y\n")
        code = main(
            ["run", str(empty), "--rect", "1", "1", "--window", "10"]
        )
        assert code == 1
        assert "empty" in capsys.readouterr().err

    def test_run_requires_rect_and_window(self, tmp_path):
        stream_path = self._make_stream(tmp_path)
        with pytest.raises(SystemExit):
            main(["run", str(stream_path)])


class TestChunkSizeFlag:
    def _make_stream(self, tmp_path):
        return TestRunCommand._make_stream(self, tmp_path)

    def test_run_with_explicit_chunk_size(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        code = main(
            [
                "run",
                str(stream_path),
                "--algorithm",
                "ccs",
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--report-every",
                "100",
                "--chunk-size",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score=" in out
        # Reports still come once per reporting interval, not per chunk.
        assert out.count("objects,") == 3

    def test_chunk_size_must_be_positive(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        code = main(
            [
                "run",
                str(stream_path),
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--chunk-size",
                "0",
            ]
        )
        assert code == 2
        assert "chunk-size" in capsys.readouterr().err

    def test_default_chunking_matches_explicit_reporting_interval(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        args = [
            "run",
            str(stream_path),
            "--algorithm",
            "gaps",
            "--rect",
            "0.01",
            "0.01",
            "--window",
            "300",
            "--report-every",
            "100",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--chunk-size", "100"]) == 0
        explicit_out = capsys.readouterr().out
        assert default_out == explicit_out

    def test_chunk_size_exceeding_report_interval_rejected(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        code = main(
            [
                "run",
                str(stream_path),
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--report-every",
                "100",
                "--chunk-size",
                "500",
            ]
        )
        assert code == 2
        assert "must not exceed" in capsys.readouterr().err


class TestServeCommand:
    def _make_stream(self, tmp_path):
        out = tmp_path / "stream.csv"
        rng = random.Random(7)
        keywords = ("concert", "parade")
        write_csv_stream(
            out,
            [
                SpatialObject(
                    x=rng.uniform(0.0, 5.0),
                    y=rng.uniform(0.0, 5.0),
                    timestamp=float(index),
                    weight=rng.uniform(0.5, 5.0),
                    object_id=index,
                    attributes={"keywords": (keywords[index % 2],)},
                )
                for index in range(300)
            ],
        )
        return out

    def _make_queries(self, tmp_path):
        import json

        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "id": "concerts",
                        "keyword": "concert",
                        "rect": [1.0, 1.0],
                        "window": 30,
                        "algorithm": "ccs",
                        "backend": "python",
                    },
                    {"id": "all", "rect": [1.5, 1.5], "window": 60, "algorithm": "gaps"},
                ]
            )
        )
        return path

    def test_serve_prints_per_query_reports(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                str(self._make_stream(tmp_path)),
                "--queries",
                str(self._make_queries(tmp_path)),
                "--shards",
                "2",
                "--chunk-size",
                "50",
                "--report-every",
                "100",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "concerts:" in captured.out
        assert "all:" in captured.out
        assert "object-query pairs" in captured.err
        assert "routed" in captured.err

    def test_serve_thread_executor_matches_serial(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        queries_path = self._make_queries(tmp_path)
        outputs = []
        for executor in ("serial", "thread"):
            code = main(
                [
                    "serve",
                    str(stream_path),
                    "--queries",
                    str(queries_path),
                    "--executor",
                    executor,
                    "--shards",
                    "2",
                    "--chunk-size",
                    "64",
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_serve_no_shared_plan_matches_default(self, tmp_path, capsys):
        """--no-shared-plan is an escape hatch, never a different answer."""
        stream_path = self._make_stream(tmp_path)
        queries_path = self._make_queries(tmp_path)
        outputs, errs = [], []
        for extra in ((), ("--no-shared-plan",)):
            code = main(
                [
                    "serve",
                    str(stream_path),
                    "--queries",
                    str(queries_path),
                    "--chunk-size",
                    "64",
                    *extra,
                ]
            )
            assert code == 0
            captured = capsys.readouterr()
            outputs.append(captured.out)
            errs.append(captured.err)
        assert outputs[0] == outputs[1]
        assert "plan=shared" in errs[0]
        assert "plan=unshared" in errs[1]

    def test_serve_resume_keeps_recorded_plan_unless_overridden(
        self, tmp_path, capsys
    ):
        stream_path = self._make_stream(tmp_path)
        queries_path = self._make_queries(tmp_path)
        ckpt = tmp_path / "ckpt"
        base = ["serve", str(stream_path), "--chunk-size", "64"]
        assert (
            main(base + ["--queries", str(queries_path), "--checkpoint-dir", str(ckpt)])
            == 0
        )
        capsys.readouterr()
        # Default resume keeps the recorded (shared) plan.
        assert main(base + ["--resume", "--checkpoint-dir", str(ckpt)]) == 0
        assert "plan=shared" in capsys.readouterr().err
        # The flags override the recorded plan on resume, in either
        # direction — including forcing the plan back on over a checkpoint
        # recorded with it off.
        assert (
            main(
                base + ["--resume", "--checkpoint-dir", str(ckpt), "--no-shared-plan"]
            )
            == 0
        )
        assert "plan=unshared" in capsys.readouterr().err
        assert (
            main(base + ["--resume", "--checkpoint-dir", str(ckpt), "--shared-plan"])
            == 0
        )
        assert "plan=shared" in capsys.readouterr().err

    def test_serve_resume_shared_plan_over_unshared_checkpoint(
        self, tmp_path, capsys
    ):
        stream_path = self._make_stream(tmp_path)
        queries_path = self._make_queries(tmp_path)
        ckpt = tmp_path / "ckpt"
        base = ["serve", str(stream_path), "--chunk-size", "64"]
        assert (
            main(
                base
                + [
                    "--queries",
                    str(queries_path),
                    "--no-shared-plan",
                    "--checkpoint-dir",
                    str(ckpt),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Recorded plan (unshared) is kept by default...
        assert main(base + ["--resume", "--checkpoint-dir", str(ckpt)]) == 0
        assert "plan=unshared" in capsys.readouterr().err
        # ...and --shared-plan switches it back on.
        assert (
            main(base + ["--resume", "--checkpoint-dir", str(ckpt), "--shared-plan"])
            == 0
        )
        assert "plan=shared" in capsys.readouterr().err
        # The two flags are mutually exclusive.
        with pytest.raises(SystemExit):
            main(base + ["--resume", "--checkpoint-dir", str(ckpt),
                         "--shared-plan", "--no-shared-plan"])

    def test_serve_rejects_bad_usage(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        queries_path = self._make_queries(tmp_path)
        base = ["serve", str(stream_path), "--queries", str(queries_path)]
        assert main(base + ["--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(base + ["--chunk-size", "0"]) == 2
        assert "--chunk-size" in capsys.readouterr().err
        assert main(base + ["--report-every", "0"]) == 2
        assert "--report-every" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(base + ["--executor", "gpu"])

    def test_serve_missing_or_invalid_queries_file(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        code = main(
            ["serve", str(stream_path), "--queries", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "failed to load" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["serve", str(stream_path), "--queries", str(bad)]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_serve_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        write_csv_stream(empty, [])
        code = main(
            ["serve", str(empty), "--queries", str(self._make_queries(tmp_path))]
        )
        assert code == 1
        assert "stream is empty" in capsys.readouterr().err
