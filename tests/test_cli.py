"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.io import load_stream


class TestGenerateCommand:
    def test_generate_csv(self, tmp_path, capsys):
        out = tmp_path / "taxi.csv"
        code = main(
            ["generate", "--profile", "taxi", "--objects", "200", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        stream = load_stream(out)
        assert len(stream) >= 200
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_generate_jsonl_without_bursts(self, tmp_path):
        out = tmp_path / "uk.jsonl"
        code = main(
            [
                "generate",
                "--profile",
                "uk",
                "--objects",
                "150",
                "--no-bursts",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert len(load_stream(out)) == 150

    def test_generate_rejects_unknown_extension(self, tmp_path, capsys):
        out = tmp_path / "stream.xyz"
        code = main(["generate", "--objects", "10", "--out", str(out)])
        assert code == 1
        assert "must end in" in capsys.readouterr().err

    def test_generate_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--profile", "mars", "--out", str(tmp_path / "x.csv")])


class TestRunCommand:
    def _make_stream(self, tmp_path):
        out = tmp_path / "stream.csv"
        assert (
            main(
                [
                    "generate",
                    "--profile",
                    "taxi",
                    "--objects",
                    "300",
                    "--no-bursts",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        return out

    def test_run_prints_reports(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "run",
                str(stream_path),
                "--algorithm",
                "gaps",
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--report-every",
                "100",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "score=" in captured.out
        assert "events" in captured.err

    def test_run_top_k(self, tmp_path, capsys):
        stream_path = self._make_stream(tmp_path)
        capsys.readouterr()
        code = main(
            [
                "run",
                str(stream_path),
                "--algorithm",
                "kgaps",
                "--rect",
                "0.01",
                "0.01",
                "--window",
                "300",
                "--k",
                "3",
                "--report-every",
                "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The final report lists up to three regions separated by semicolons.
        assert out.strip().splitlines()[-1].count("score=") >= 1

    def test_run_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text("timestamp,x,y\n")
        code = main(
            ["run", str(empty), "--rect", "1", "1", "--window", "10"]
        )
        assert code == 1
        assert "empty" in capsys.readouterr().err

    def test_run_requires_rect_and_window(self, tmp_path):
        stream_path = self._make_stream(tmp_path)
        with pytest.raises(SystemExit):
            main(["run", str(stream_path)])
