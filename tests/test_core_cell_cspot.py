"""Unit and behavioural tests for the exact Cell-CSPOT detector."""

import pytest

from tests.helpers import feed, make_objects, scores_close
from repro.core.brute import best_region_brute_force
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestBasicDetection:
    def test_no_objects_no_result(self, small_query):
        detector = CellCSPOT(small_query)
        assert detector.result() is None
        assert detector.current_score() == 0.0

    def test_single_object(self, small_query):
        detector = CellCSPOT(small_query)
        feed(detector, [obj(2.0, 3.0, 0.0, weight=4.0)], small_query.window_length)
        result = detector.result()
        assert result is not None
        assert result.score == pytest.approx(4.0 / small_query.window_length)
        assert result.region.contains_xy(2.0, 3.0)

    def test_result_region_has_query_size(self, small_query):
        detector = CellCSPOT(small_query)
        feed(detector, [obj(1.0, 1.0, 0.0)], small_query.window_length)
        region = detector.result().region
        assert region.width == pytest.approx(small_query.rect_width)
        assert region.height == pytest.approx(small_query.rect_height)

    def test_cluster_detected_over_scattered_objects(self, small_query):
        objects = [
            obj(0.1, 0.1, 0.0, 1.0, 0),
            obj(0.3, 0.3, 1.0, 1.0, 1),
            obj(0.5, 0.5, 2.0, 1.0, 2),
            obj(7.0, 7.0, 3.0, 1.0, 3),
        ]
        detector = CellCSPOT(small_query)
        feed(detector, objects, small_query.window_length)
        result = detector.result()
        assert result.score == pytest.approx(3.0 / small_query.window_length)
        for i in range(3):
            assert result.region.contains_xy(objects[i].x, objects[i].y)

    def test_objects_outside_preferred_area_are_ignored(self):
        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=10.0,
            alpha=0.5,
            area=Rect(0.0, 0.0, 5.0, 5.0),
        )
        detector = CellCSPOT(query)
        feed(
            detector,
            [obj(2.0, 2.0, 0.0, 1.0, 0), obj(9.0, 9.0, 1.0, 100.0, 1)],
            query.window_length,
        )
        assert detector.result().score == pytest.approx(0.1)
        assert detector.stats.events_skipped == 1

    def test_expired_objects_free_their_cells(self, small_query):
        detector = CellCSPOT(small_query)
        objects = [obj(1.0, 1.0, 0.0, 1.0, 0), obj(1.0, 1.0, 100.0, 1.0, 1)]
        feed(detector, objects, small_query.window_length)
        # The first object expired long ago; only the second remains.
        assert detector.live_cell_count >= 1
        assert detector.result().score == pytest.approx(1.0 / small_query.window_length)

    def test_empty_after_everything_expires(self, small_query):
        detector = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(1.0, 1.0, 0.0, 1.0, 0)):
            detector.process(event)
        for event in windows.advance_time(1_000.0):
            detector.process(event)
        assert detector.result() is None
        assert detector.live_cell_count == 0


class TestLazyUpdateMachinery:
    def test_far_away_events_do_not_trigger_searches(self, small_query):
        detector = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        # Establish a strong cluster near the origin.
        for index in range(5):
            for event in windows.observe(obj(0.2, 0.2, index * 0.1, 10.0, index)):
                detector.process(event)
        searches_after_cluster = detector.stats.cells_searched
        # Light objects far away cannot beat the cluster: their cells' upper
        # bounds stay below the incumbent, so no search should be triggered.
        for index in range(5, 25):
            x = 50.0 + (index % 5) * 3.0
            y = 50.0 + (index // 5) * 3.0
            for event in windows.observe(obj(x, y, 0.5 + index * 0.01, 0.1, index)):
                detector.process(event)
        assert detector.stats.cells_searched == searches_after_cluster

    def test_search_trigger_ratio_is_small_on_skewed_streams(self, small_query):
        detector = CellCSPOT(small_query)
        objects = []
        for index in range(120):
            if index % 10 == 0:
                objects.append(obj(0.5, 0.5, index * 0.1, 50.0, index))
            else:
                objects.append(
                    obj(5.0 + (index % 7), 5.0 + (index % 5), index * 0.1, 1.0, index)
                )
        feed(detector, objects, small_query.window_length)
        assert detector.stats.search_trigger_ratio < 0.5

    def test_stats_count_events(self, small_query):
        detector = CellCSPOT(small_query)
        feed(detector, make_objects(30, seed=2), small_query.window_length)
        assert detector.stats.events_processed >= 30
        assert detector.stats.cells_searched > 0
        assert detector.stats.rectangles_swept >= detector.stats.cells_searched

    def test_live_rectangle_count_bounded_by_four_copies(self, small_query):
        detector = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        count = 25
        for index in range(count):
            for event in windows.observe(
                obj(index * 0.3, index * 0.2, index * 0.1, 1.0, index)
            ):
                detector.process(event)
        alive = len(windows)
        assert detector.live_rectangle_count <= 4 * alive


class TestExactnessAgainstBruteForce:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.7])
    def test_matches_brute_force_continuously(self, alpha):
        query = SurgeQuery(rect_width=1.3, rect_height=0.9, window_length=15.0, alpha=alpha)
        detector = CellCSPOT(query)
        windows = SlidingWindowPair(query.window_length)
        for index, spatial in enumerate(make_objects(80, seed=4, extent=6.0)):
            for event in windows.observe(spatial):
                detector.process(event)
            if index % 5:
                continue
            state = windows.state()
            expected = best_region_brute_force(state.current, state.past, query)
            expected_score = expected.score if expected else 0.0
            assert scores_close(detector.current_score(), expected_score)

    def test_candidate_reuse_can_be_disabled(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=15.0, alpha=0.5)
        lazy = CellCSPOT(query)
        eager = CellCSPOT(query, candidate_reuse=False)
        windows = SlidingWindowPair(query.window_length)
        for spatial in make_objects(60, seed=9, extent=5.0):
            for event in windows.observe(spatial):
                lazy.process(event)
                eager.process(event)
            assert scores_close(lazy.current_score(), eager.current_score())
        # Disabling candidate reuse can only increase the number of searches.
        assert eager.stats.cells_searched >= lazy.stats.cells_searched
