"""``feed``/``flush_pending``: push-style ingestion ≡ one ``run``.

The network tier dispatches whatever batches connections happen to carry,
so the service grew a push-style entry point.  Its contract: interleaving
``feed`` calls (any batch split, including one record at a time) with one
final ``flush_pending`` is **bit-identical** to a single ``run`` over the
concatenated arrivals — chunk boundaries depend only on the arrival
sequence, never on how it was split across calls.  Strict mode keeps the
historical fail-fast contract as typed errors, and a checkpoint taken
mid-feed restores to an exactly-once continuation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.query import SurgeQuery
from repro.service import QuerySpec, SurgeService
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject
from repro.streams.windows import OutOfOrderError

MAX_LATENESS = 2.0


def make_clean(count: int, seed: int) -> list[SpatialObject]:
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(count):
        t += rng.uniform(0.1, 0.6)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 5.0),
                object_id=index,
                attributes={"keywords": (rng.choice(("concert", "parade")),)},
            )
        )
    return objects


def make_specs() -> list[QuerySpec]:
    query = SurgeQuery(1.5, 1.5, window_length=8.0, alpha=0.5)
    return [
        QuerySpec(
            query_id="kw", query=query, algorithm="ccs",
            keyword="concert", backend="python",
        ),
        QuerySpec(query_id="all", query=query, algorithm="ccs", backend="python"),
    ]


def run_reference(arrivals, *, chunk_size=8, max_lateness=0.0):
    with SurgeService(make_specs(), max_lateness=max_lateness) as service:
        chunks = [list(updates) for updates in service.run(arrivals, chunk_size)]
        return service.results(), chunks


def split_batches(arrivals, sizes):
    batches, cursor = [], 0
    index = 0
    while cursor < len(arrivals):
        size = sizes[index % len(sizes)]
        batches.append(arrivals[cursor : cursor + size])
        cursor += size
        index += 1
    return batches


class TestStrictFeed:
    @pytest.mark.parametrize("sizes", [(1,), (3, 5, 2), (17,), (64,)])
    def test_feed_equals_run(self, sizes):
        arrivals = make_clean(60, seed=11)
        expected_results, expected_chunks = run_reference(arrivals)
        with SurgeService(make_specs()) as service:
            got_chunks = []
            for batch in split_batches(arrivals, sizes):
                got_chunks.extend(
                    list(updates) for updates in service.feed(batch, 8)
                )
            got_chunks.extend(
                list(updates) for updates in service.flush_pending()
            )
            assert service.results() == expected_results
        # Chunk boundaries (and hence every update) line up exactly.
        assert [
            [(u.query_id, u.chunk_index, u.result) for u in chunk]
            for chunk in got_chunks
        ] == [
            [(u.query_id, u.chunk_index, u.result) for u in chunk]
            for chunk in expected_chunks
        ]

    def test_malformed_record_raises_typed(self):
        with SurgeService(make_specs()) as service:
            with pytest.raises(ValueError, match="strict mode"):
                list(service.feed([{"not": "an object"}], 8))

    def test_out_of_order_raises(self):
        arrivals = make_clean(10, seed=2)
        swapped = [arrivals[3]] + arrivals[:3]
        with SurgeService(make_specs()) as service:
            with pytest.raises(OutOfOrderError):
                list(service.feed(swapped, 8))

    def test_chunk_size_validated(self):
        with SurgeService(make_specs()) as service:
            with pytest.raises(ValueError, match="positive"):
                list(service.feed([], 0))
            with pytest.raises(ValueError, match="positive"):
                list(service.flush_pending(0))

    def test_flush_without_feed_is_noop(self):
        with SurgeService(make_specs()) as service:
            assert list(service.flush_pending()) == []


class TestTolerantFeed:
    @pytest.mark.parametrize("sizes", [(1,), (5, 9), (23,)])
    def test_disordered_feed_equals_sorted_run(self, sizes):
        clean = make_clean(60, seed=7)
        injector = FaultInjector(
            clean, seed=13, disorder_fraction=0.3, max_disorder=MAX_LATENESS
        )
        expected_results, _ = run_reference(injector.reference())
        arrivals = injector.materialize()
        with SurgeService(make_specs(), max_lateness=MAX_LATENESS) as service:
            for batch in split_batches(arrivals, sizes):
                for _ in service.feed(batch, 8):
                    pass
            for _ in service.flush_pending():
                pass
            assert service.ingest_stats().late_dropped == 0
            assert service.results() == expected_results

    def test_poison_records_quarantined_not_raised(self):
        clean = make_clean(40, seed=5)
        injector = FaultInjector(clean, seed=21, poison_fraction=0.2)
        with SurgeService(make_specs(), max_lateness=MAX_LATENESS) as service:
            for _ in service.feed(injector.materialize(), 8):
                pass
            for _ in service.flush_pending():
                pass
            ingest = service.ingest_stats()
            assert ingest.quarantined == injector.poisoned
        expected_results, _ = run_reference(injector.reference())
        assert service.results() == expected_results


class TestFeedCheckpoint:
    def test_mid_feed_checkpoint_resumes_exactly_once(self, tmp_path):
        arrivals = make_clean(50, seed=9)
        expected_results, _ = run_reference(arrivals, chunk_size=8)
        first = SurgeService(make_specs(), checkpoint_dir=tmp_path)
        # Feed a prefix that leaves a partial chunk pending, checkpoint,
        # and abandon the instance (simulated crash).
        for _ in first.feed(arrivals[:21], 8):
            pass
        first.checkpoint()
        first.close()
        restored = SurgeService.restore(tmp_path)
        with restored as service:
            consumed = service.raw_consumed
            assert consumed == 21
            for _ in service.feed(arrivals[consumed:], 8):
                pass
            for _ in service.flush_pending():
                pass
            assert service.results() == expected_results
