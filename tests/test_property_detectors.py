"""Property-based end-to-end tests over random streams.

These are the strongest correctness checks in the suite: for randomly
generated streams and queries,

* every exact detector (Cell-CSPOT, B-CCS, Base, aG2, naive) must report the
  same burst score as the brute-force snapshot optimum, and
* the approximate detectors must respect the ``(1 - α) / 4`` guarantee while
  never exceeding the optimum.

Stream sizes are kept small so the whole module stays fast.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import best_region_brute_force
from repro.core.monitor import make_detector
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


@st.composite
def stream_and_query(draw):
    alpha = draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False))
    rect_w = draw(st.floats(min_value=0.4, max_value=2.0, allow_nan=False))
    rect_h = draw(st.floats(min_value=0.4, max_value=2.0, allow_nan=False))
    window = draw(st.floats(min_value=3.0, max_value=20.0, allow_nan=False))
    query = SurgeQuery(
        rect_width=rect_w, rect_height=rect_h, window_length=window, alpha=alpha
    )
    count = draw(st.integers(min_value=1, max_value=35))
    objects = []
    timestamp = 0.0
    for index in range(count):
        timestamp += draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        objects.append(
            SpatialObject(
                x=draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False)),
                y=draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False)),
                timestamp=timestamp,
                weight=draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False)),
                object_id=index,
            )
        )
    return objects, query


def run_and_compare(objects, query, names):
    detectors = {name: make_detector(name, query) for name in names}
    windows = SlidingWindowPair(query.window_length)
    for obj in objects:
        for event in windows.observe(obj):
            for detector in detectors.values():
                detector.process(event)
    state = windows.state()
    optimum = best_region_brute_force(state.current, state.past, query)
    optimum_score = optimum.score if optimum is not None else 0.0
    return detectors, optimum_score


class TestExactDetectors:
    @given(data=stream_and_query())
    @settings(max_examples=25, deadline=None)
    def test_cell_detectors_match_brute_force(self, data):
        objects, query = data
        detectors, optimum = run_and_compare(objects, query, ["ccs", "bccs", "base"])
        for name, detector in detectors.items():
            assert abs(detector.current_score() - optimum) <= 1e-6 * max(1.0, optimum), name

    @given(data=stream_and_query())
    @settings(max_examples=15, deadline=None)
    def test_ag2_matches_brute_force(self, data):
        objects, query = data
        detectors, optimum = run_and_compare(objects, query, ["ag2"])
        assert abs(detectors["ag2"].current_score() - optimum) <= 1e-6 * max(1.0, optimum)


class TestApproximateDetectors:
    @given(data=stream_and_query())
    @settings(max_examples=25, deadline=None)
    def test_gap_detectors_respect_bounds(self, data):
        objects, query = data
        detectors, optimum = run_and_compare(objects, query, ["gaps", "mgaps"])
        lower = (1.0 - query.alpha) / 4.0 * optimum
        for name, detector in detectors.items():
            score = detector.current_score()
            assert score <= optimum + 1e-6 * max(1.0, optimum), name
            assert score >= lower - 1e-6 * max(1.0, optimum), name

    @given(data=stream_and_query())
    @settings(max_examples=15, deadline=None)
    def test_mgaps_never_worse_than_gaps(self, data):
        objects, query = data
        detectors, _ = run_and_compare(objects, query, ["gaps", "mgaps"])
        assert (
            detectors["mgaps"].current_score()
            >= detectors["gaps"].current_score() - 1e-9
        )
