"""Unit tests for the burst score function and the window accumulator."""

import pytest

from repro.core.burst import (
    WindowAccumulator,
    burst_score,
    score_of_weights,
    validate_alpha,
    window_score,
)


class TestBurstScore:
    def test_definition_when_increasing(self):
        # S = alpha*(fc - fp) + (1 - alpha)*fc when fc > fp.
        assert burst_score(4.0, 1.0, 0.5) == pytest.approx(0.5 * 3.0 + 0.5 * 4.0)

    def test_definition_when_decreasing(self):
        # The burstiness term is clamped at zero when fc < fp.
        assert burst_score(1.0, 4.0, 0.5) == pytest.approx(0.5 * 1.0)

    def test_alpha_zero_is_pure_significance(self):
        assert burst_score(3.0, 100.0, 0.0) == pytest.approx(3.0)

    def test_alpha_near_one_is_mostly_burstiness(self):
        assert burst_score(3.0, 3.0, 0.99) == pytest.approx(0.01 * 3.0)

    def test_score_is_non_negative(self):
        assert burst_score(0.0, 5.0, 0.7) == 0.0

    def test_paper_example_three_unit_objects(self):
        # Example 3 of the paper: three unit-weight objects in Wc, |Wc| = 1,
        # empty past window -> burst score 3 regardless of alpha.
        assert burst_score(3.0, 0.0, 0.5) == pytest.approx(3.0)
        assert burst_score(3.0, 0.0, 0.9) == pytest.approx(3.0)

    def test_validate_alpha(self):
        assert validate_alpha(0.0) == 0.0
        assert validate_alpha(0.999) == 0.999
        with pytest.raises(ValueError):
            validate_alpha(1.0)
        with pytest.raises(ValueError):
            validate_alpha(-0.1)

    def test_window_score(self):
        assert window_score(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            window_score(10.0, 0.0)

    def test_score_of_weights(self):
        assert score_of_weights(10.0, 5.0, 2.0, 2.0, 0.5) == pytest.approx(
            0.5 * (5.0 - 2.5) + 0.5 * 5.0
        )


class TestWindowAccumulator:
    def test_starts_empty(self):
        acc = WindowAccumulator()
        assert acc.is_empty
        assert acc.score(0.5) == 0.0

    def test_new_event_increases_current_score(self):
        acc = WindowAccumulator()
        acc.apply_new(weight=6.0, current_length=2.0)
        assert acc.fc == pytest.approx(3.0)
        assert acc.count_current == 1
        assert not acc.is_empty

    def test_grown_event_moves_mass_to_past(self):
        acc = WindowAccumulator()
        acc.apply_new(6.0, current_length=2.0)
        acc.apply_grown(6.0, current_length=2.0, past_length=3.0)
        assert acc.fc == pytest.approx(0.0)
        assert acc.fp == pytest.approx(2.0)
        assert acc.count_current == 0
        assert acc.count_past == 1

    def test_expired_event_removes_past_mass(self):
        acc = WindowAccumulator()
        acc.apply_new(6.0, 2.0)
        acc.apply_grown(6.0, 2.0, 2.0)
        acc.apply_expired(6.0, 2.0)
        assert acc.is_empty
        assert acc.fc == pytest.approx(0.0)
        assert acc.fp == pytest.approx(0.0)

    def test_score_matches_direct_formula(self):
        acc = WindowAccumulator()
        acc.apply_new(4.0, 2.0)
        acc.apply_new(2.0, 2.0)
        acc.apply_grown(4.0, 2.0, 2.0)
        expected = burst_score(acc.fc, acc.fp, 0.3)
        assert acc.score(0.3) == pytest.approx(expected)

    def test_copy_is_detached(self):
        acc = WindowAccumulator()
        acc.apply_new(1.0, 1.0)
        clone = acc.copy()
        acc.apply_new(1.0, 1.0)
        assert clone.fc == pytest.approx(1.0)
        assert acc.fc == pytest.approx(2.0)

    def test_full_lifecycle_returns_to_zero(self):
        acc = WindowAccumulator()
        weights = [3.0, 7.0, 1.5]
        for w in weights:
            acc.apply_new(w, 4.0)
        for w in weights:
            acc.apply_grown(w, 4.0, 4.0)
        for w in weights:
            acc.apply_expired(w, 4.0)
        assert acc.is_empty
        assert acc.fc == pytest.approx(0.0, abs=1e-12)
        assert acc.fp == pytest.approx(0.0, abs=1e-12)
