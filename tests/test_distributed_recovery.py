"""Crash-window recovery under the distributed shard layout.

The checkpoint protocol orders its steps (shard files → manifest publish
→ WAL reset → prune) so that a crash *anywhere* inside the window leaves
a restorable directory.  This suite injects a crash into each window and
proves the resume is still exactly-once and bit-identical to the
uninterrupted run, with the remote executor on at least one side of every
cycle (its failover ledger and shared-storage bases ride the same files):

* **torn WAL tail** — the process died mid-append; the unparseable final
  line is detected, ignored, and the replay covers the lost chunk;
* **manifest published, shard file interrupted** — the newest
  generation's shard snapshot is truncated (a violated atomic-write
  contract, e.g. power loss between fsync and publish); restore falls
  back to ``MANIFEST.prev.json`` one generation earlier, with a
  structured warning, and replays the extra tail;
* **shard files written, manifest never published** — the crash hit
  between the shards' ``ckpt_ack`` and the manifest replace; the
  directory still restores from the *previous* manifest and the orphaned
  newer-generation files are ignored.
"""

from __future__ import annotations

import logging

import pytest

from repro.service import SurgeService
from repro.state import CheckpointPolicy
from repro.state.recovery import (
    manifest_path,
    previous_manifest_path,
    read_manifest,
    wal_path,
)
from repro.state.snapshot import SnapshotError
from repro.state.wal import ChunkWal
from repro.streams.sources import iter_chunks
from tests.test_recovery import (
    CHUNK_SIZE,
    make_specs,
    make_stream,
    result_key,
    uninterrupted_run,
)

#: A one-worker self-spawning fleet: enough to put real process and wire
#: boundaries under every restore without multi-worker scheduling noise.
REMOTE_OPTIONS = {
    "workers": 1,
    "spawn_workers": 1,
    "join_timeout": 60.0,
    "heartbeat_interval": 60.0,
}


@pytest.fixture(scope="module")
def stream():
    return make_stream()


@pytest.fixture(scope="module")
def reference(stream):
    return uninterrupted_run(stream)


def crash_after(directory, stream, chunks, *, executor="serial", options=None):
    """Run ``chunks`` chunks with every-2-chunks checkpoints, then "crash".

    The in-memory state is discarded (the executor is shut down so a
    remote fleet does not leak), leaving only the checkpoint directory —
    exactly what a killed process leaves behind.
    """
    service = SurgeService(
        make_specs(),
        shards=2,
        executor=executor,
        executor_options=options,
        checkpoint_dir=directory,
        checkpoint_policy=CheckpointPolicy(every_chunks=2),
    )
    feed = iter(iter_chunks(stream, CHUNK_SIZE))
    with service:
        for _ in range(chunks):
            service.push_many(next(feed))
    # `close()` only releases the executor; it neither checkpoints nor
    # flushes, so the directory is indistinguishable from a crash at this
    # point in the stream.


def finish_and_compare(restored, stream, reference):
    """Replay the tail on a restored service; assert it matches bit for bit."""
    ref_trace, ref_finals, ref_top_k, _ = reference
    offset = restored.chunk_offset
    with restored:
        tail = [
            {u.query_id: result_key(u.result) for u in updates}
            for updates in restored.run(stream, CHUNK_SIZE, start_offset=offset)
        ]
        assert tail == ref_trace[offset:]
        assert {
            qid: result_key(r) for qid, r in restored.results().items()
        } == ref_finals
        assert {
            qid: tuple(result_key(r) for r in results)
            for qid, results in restored.top_k().items()
        } == ref_top_k


def test_torn_wal_tail_is_ignored_and_replayed(tmp_path, stream, reference):
    """A WAL append cut mid-record costs nothing but the replayed chunk."""
    crash_after(tmp_path, stream, 5)
    with wal_path(tmp_path).open("a", encoding="utf-8") as handle:
        handle.write('{"type": "chunk", "chunk": 5, "objec')  # no newline
    state = ChunkWal.read(wal_path(tmp_path))
    assert state.torn_tail is True
    assert state.checkpoint.chunk_offset == 4

    restored = SurgeService.restore(
        tmp_path, executor="remote", executor_options=dict(REMOTE_OPTIONS)
    )
    assert restored.executor_name == "remote"
    assert restored.chunk_offset == 4
    finish_and_compare(restored, stream, reference)


@pytest.mark.parametrize(
    "executor,options",
    [("serial", None), ("remote", REMOTE_OPTIONS)],
    ids=["serial", "remote"],
)
def test_interrupted_shard_file_falls_back_a_generation(
    tmp_path, stream, reference, caplog, executor, options
):
    """Manifest names a torn shard snapshot: restore uses MANIFEST.prev.json.

    Under the remote executor the snapshot error crosses the wire from the
    worker that tried to load the file; it must still arrive typed as a
    :class:`SnapshotError` or the fallback never triggers — and the failed
    attempt's worker fleet must be released, not leaked.
    """
    crash_after(tmp_path, stream, 5, executor=executor, options=options)
    manifest = read_manifest(tmp_path)
    assert manifest.generation == 2
    victim = tmp_path / manifest.shard_files[0]
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])

    with caplog.at_level(logging.WARNING, logger="repro.service.service"):
        restored = SurgeService.restore(
            tmp_path,
            executor=executor,
            executor_options=dict(options) if options else None,
        )
    events = [
        getattr(record, "event", None)
        for record in caplog.records
        if record.name == "repro.service.service"
    ]
    assert "restore_fallback" in events
    assert restored.chunk_offset == 2  # generation 1's offset, exactly-once
    finish_and_compare(restored, stream, reference)


def test_fallback_refuses_when_previous_is_missing(tmp_path, stream):
    """No MANIFEST.prev.json: the original snapshot error surfaces loudly."""
    crash_after(tmp_path, stream, 5)
    manifest = read_manifest(tmp_path)
    victim = tmp_path / manifest.shard_files[0]
    victim.write_bytes(b"not a snapshot")
    previous_manifest_path(tmp_path).unlink()
    with pytest.raises(SnapshotError):
        SurgeService.restore(tmp_path)


def test_checkpoint_without_manifest_publish_restores_previous(
    tmp_path, stream, reference
):
    """Crash between the shards' ckpt-acks and the manifest replace.

    The newer generation's shard files are on disk (all workers acked the
    checkpoint scatter) but the manifest still names the previous
    generation — the directory is rewound to that exact window by putting
    the pre-publish manifest back in place.  Restore must use the old
    manifest, ignore the orphaned newer files, and replay the tail.
    """
    crash_after(tmp_path, stream, 5)
    manifest = read_manifest(tmp_path)
    assert manifest.generation == 2
    # Rewind the publish: generation 2's shard files stay on disk, but the
    # manifest is the one generation 1 wrote.
    previous = previous_manifest_path(tmp_path)
    manifest_path(tmp_path).write_bytes(previous.read_bytes())
    previous.unlink()
    assert (tmp_path / manifest.shard_files[0]).exists()  # the orphans

    restored = SurgeService.restore(
        tmp_path, executor="remote", executor_options=dict(REMOTE_OPTIONS)
    )
    assert restored.chunk_offset == 2
    finish_and_compare(restored, stream, reference)
