"""Test suite for the SURGE reproduction."""
