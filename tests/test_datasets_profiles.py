"""Unit tests for the dataset profiles (Table I stand-ins)."""

import pytest

from repro.datasets.profiles import PROFILES, TAXI_PROFILE, UK_PROFILE, US_PROFILE


class TestProfiles:
    def test_all_three_profiles_registered(self):
        assert set(PROFILES) == {"uk", "us", "taxi"}
        assert PROFILES["uk"] is UK_PROFILE
        assert PROFILES["us"] is US_PROFILE
        assert PROFILES["taxi"] is TAXI_PROFILE

    def test_table1_arrival_rates(self):
        assert UK_PROFILE.arrival_rate_per_hour == 5_747
        assert US_PROFILE.arrival_rate_per_hour == 16_802
        assert TAXI_PROFILE.arrival_rate_per_hour == 18_145

    def test_table1_object_counts(self):
        for profile in PROFILES.values():
            assert profile.total_objects == 1_000_000

    def test_weight_range_matches_paper(self):
        for profile in PROFILES.values():
            assert profile.weight_range == (1.0, 100.0)

    def test_default_windows(self):
        assert UK_PROFILE.default_window_seconds == 3600.0
        assert US_PROFILE.default_window_seconds == 3600.0
        assert TAXI_PROFILE.default_window_seconds == 300.0

    def test_taxi_extent_matches_rome(self):
        extent = TAXI_PROFILE.extent
        assert extent.min_x == pytest.approx(12.0)
        assert extent.max_x == pytest.approx(12.9)
        assert extent.min_y == pytest.approx(41.6)
        assert extent.max_y == pytest.approx(42.2)

    def test_default_rect_is_one_thousandth_of_range(self):
        for profile in PROFILES.values():
            assert profile.default_rect_width == pytest.approx(profile.lon_range / 1000.0)
            assert profile.default_rect_height == pytest.approx(profile.lat_range / 1000.0)

    def test_mean_interarrival(self):
        assert UK_PROFILE.mean_interarrival_seconds == pytest.approx(3600.0 / 5747.0)

    def test_extents_have_positive_area(self):
        for profile in PROFILES.values():
            assert profile.extent.area > 0
