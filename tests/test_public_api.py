"""Tests for the package-level public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_types_exported(self):
        assert repro.SurgeQuery is not None
        assert repro.SurgeMonitor is not None
        assert repro.SpatialObject is not None
        assert repro.Rect is not None

    def test_detector_names_cover_all_paper_algorithms(self):
        assert set(repro.DETECTOR_NAMES) == {
            "ccs",
            "bccs",
            "base",
            "ag2",
            "naive",
            "gaps",
            "mgaps",
            "kccs",
            "kgaps",
            "kmgaps",
        }

    def test_subpackages_import_cleanly(self):
        for module in [
            "repro.geometry",
            "repro.streams",
            "repro.datasets",
            "repro.datasets.io",
            "repro.core",
            "repro.baselines",
            "repro.topk",
            "repro.evaluation",
            "repro.service",
            "repro.cli",
        ]:
            assert importlib.import_module(module) is not None

    def test_service_types_exported(self):
        assert repro.SurgeService is not None
        assert repro.QuerySpec is not None

    def test_quickstart_snippet_from_readme(self):
        query = repro.SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0)
        monitor = repro.SurgeMonitor(query, algorithm="ccs")
        result = monitor.push(
            repro.SpatialObject(x=0.5, y=0.5, timestamp=0.0, weight=2.0)
        )
        assert result is not None
        assert result.score == pytest.approx(2.0 / 60.0)

    def test_burst_score_exported_function(self):
        assert repro.burst_score(2.0, 1.0, 0.5) == pytest.approx(1.5)

    def test_public_docstrings_present(self):
        """Every public module and exported class carries a docstring."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            member = getattr(repro, name)
            if isinstance(member, (type,)) or callable(member):
                assert member.__doc__, f"{name} is missing a docstring"
