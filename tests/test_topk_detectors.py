"""Unit tests for the top-k detectors (kCCS, kGAPS, kMGAPS)."""

import pytest

from tests.helpers import feed, feed_many, make_objects, scores_close
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair
from repro.topk.greedy_brute import greedy_top_k_snapshot
from repro.topk.kccs import CellCSPOTTopK
from repro.topk.kgap import GapSurgeTopK
from repro.topk.kmgap import MGapSurgeTopK


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


def three_clusters(window=20.0):
    """Three well-separated clusters with decreasing total weight."""
    objects = []
    oid = 0
    for cluster_index, (cx, cy, weight) in enumerate(
        [(0.5, 0.5, 5.0), (10.5, 10.5, 3.0), (20.5, 20.5, 1.0)]
    ):
        for i in range(3):
            objects.append(
                obj(cx + i * 0.1, cy + i * 0.1, oid * 0.1, weight, oid)
            )
            oid += 1
    return objects


class TestKCCS:
    def test_empty_detector(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        assert detector.result() is None
        assert detector.top_k() == []

    def test_three_clusters_found_in_order(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        feed(detector, three_clusters(), topk_query.window_length)
        top = detector.top_k(3)
        assert len(top) == 3
        assert [round(r.score, 6) for r in top] == [
            pytest.approx(15.0 / 20.0),
            pytest.approx(9.0 / 20.0),
            pytest.approx(3.0 / 20.0),
        ]

    def test_first_region_matches_single_detector(self, topk_query):
        from repro.core.cell_cspot import CellCSPOT

        objects = make_objects(60, seed=21, extent=6.0)
        topk = CellCSPOTTopK(topk_query)
        single = CellCSPOT(topk_query)
        feed_many([topk, single], objects, topk_query.window_length)
        assert scores_close(topk.current_score(), single.current_score())

    def test_matches_greedy_brute_force_continuously(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        windows = SlidingWindowPair(topk_query.window_length)
        for index, spatial in enumerate(make_objects(50, seed=22, extent=5.0)):
            for event in windows.observe(spatial):
                detector.process(event)
            if index % 7:
                continue
            expected = greedy_top_k_snapshot(windows.state(), topk_query)
            got = detector.top_k()
            for expected_region, got_region in zip(expected, got):
                assert scores_close(expected_region.score, got_region.score)

    def test_scores_non_increasing(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        feed(detector, make_objects(50, seed=23, extent=4.0), topk_query.window_length)
        scores = [r.score for r in detector.top_k()]
        assert scores == sorted(scores, reverse=True)

    def test_memo_reuse_reduces_searches(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        windows = SlidingWindowPair(topk_query.window_length)
        objects = three_clusters()
        for spatial in objects:
            for event in windows.observe(spatial):
                detector.process(event)
        searched_first_pass = detector.stats.cells_searched
        # Far-away light objects do not disturb the top clusters; the memoised
        # per-level candidates are reused and few additional sweeps happen.
        for index in range(100, 110):
            spatial = obj(50.0 + index * 0.01, 50.0, 1.0 + index * 0.001, 0.1, index)
            for event in windows.observe(spatial):
                detector.process(event)
        assert detector.stats.cells_searched <= searched_first_pass + 25

    def test_expiration_shrinks_result_list(self, topk_query):
        detector = CellCSPOTTopK(topk_query)
        windows = SlidingWindowPair(topk_query.window_length)
        for spatial in three_clusters():
            for event in windows.observe(spatial):
                detector.process(event)
        assert len(detector.top_k()) == 3
        for event in windows.advance_time(10_000.0):
            detector.process(event)
        assert detector.top_k() == []


class TestKGaps:
    def test_returns_k_best_cells(self, topk_query):
        detector = GapSurgeTopK(topk_query)
        feed(detector, three_clusters(), topk_query.window_length)
        top = detector.top_k()
        assert len(top) == 3
        scores = [r.score for r in top]
        assert scores == sorted(scores, reverse=True)

    def test_respects_explicit_k(self, topk_query):
        detector = GapSurgeTopK(topk_query)
        feed(detector, three_clusters(), topk_query.window_length)
        assert len(detector.top_k(2)) == 2

    def test_regions_are_grid_cells(self, topk_query):
        detector = GapSurgeTopK(topk_query)
        feed(detector, three_clusters(), topk_query.window_length)
        for result in detector.top_k():
            assert result.region.width == pytest.approx(topk_query.rect_width)
            assert result.region.height == pytest.approx(topk_query.rect_height)

    def test_result_equals_first_of_top_k(self, topk_query):
        detector = GapSurgeTopK(topk_query)
        feed(detector, make_objects(40, seed=24), topk_query.window_length)
        assert detector.result().score == pytest.approx(detector.top_k()[0].score)


class TestKMGaps:
    def test_returns_non_overlapping_regions(self, topk_query):
        detector = MGapSurgeTopK(topk_query)
        feed(detector, make_objects(60, seed=25, extent=6.0), topk_query.window_length)
        top = detector.top_k()
        for i, first in enumerate(top):
            for second in top[i + 1 :]:
                assert not first.region.intersects_interior(second.region)

    def test_never_worse_than_kgaps_on_best_region(self, topk_query):
        kgaps = GapSurgeTopK(topk_query)
        kmgaps = MGapSurgeTopK(topk_query)
        feed_many([kgaps, kmgaps], make_objects(60, seed=26, extent=6.0), 20.0)
        assert kmgaps.current_score() >= kgaps.current_score() - 1e-12

    def test_three_clusters_all_found(self, topk_query):
        detector = MGapSurgeTopK(topk_query)
        feed(detector, three_clusters(), topk_query.window_length)
        top = detector.top_k()
        assert len(top) == 3
        # Each cluster fits inside a cell of at least one of the shifted
        # grids, so each reported score is the full cluster score.
        assert top[0].score == pytest.approx(15.0 / 20.0)
        assert top[1].score == pytest.approx(9.0 / 20.0)
        assert top[2].score == pytest.approx(3.0 / 20.0)
