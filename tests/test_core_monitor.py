"""Unit tests for the SurgeMonitor facade and the detector factory."""

import pytest

from tests.helpers import make_objects
from repro.core.cell_cspot import CellCSPOT
from repro.core.gap import GapSurge
from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor, make_detector
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject


class TestFactory:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_every_name_constructs_a_detector(self, name, small_query):
        detector = make_detector(name, small_query)
        assert detector.name == name
        assert detector.query is small_query

    def test_factory_is_case_insensitive(self, small_query):
        assert isinstance(make_detector("CCS", small_query), CellCSPOT)
        assert isinstance(make_detector("Gaps", small_query), GapSurge)

    def test_unknown_name_rejected(self, small_query):
        with pytest.raises(ValueError, match="unknown detector"):
            make_detector("does-not-exist", small_query)

    def test_options_are_forwarded(self, small_query):
        ag2 = make_detector("ag2", small_query, cell_scale=5.0)
        assert ag2.cell_scale == 5.0

    def test_exactness_flags(self, small_query):
        assert make_detector("ccs", small_query).exact
        assert make_detector("naive", small_query).exact
        assert not make_detector("gaps", small_query).exact
        assert not make_detector("mgaps", small_query).exact


class TestMonitor:
    def test_push_returns_current_result(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="ccs")
        result = monitor.push(SpatialObject(x=1.0, y=1.0, timestamp=0.0, weight=5.0))
        assert result is not None
        assert result.score == pytest.approx(0.25)
        assert monitor.objects_seen == 1

    def test_accepts_prebuilt_detector(self, small_query):
        detector = GapSurge(small_query)
        monitor = SurgeMonitor(small_query, algorithm=detector)
        assert monitor.detector is detector

    def test_run_yields_one_result_per_object(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        results = list(monitor.run(make_objects(15, seed=1)))
        assert len(results) == 15
        assert results[-1] is not None

    def test_monitor_and_manual_feeding_agree(self, small_query):
        objects = make_objects(40, seed=2)
        monitor = SurgeMonitor(small_query, algorithm="ccs")
        for obj in objects:
            monitor.push(obj)

        from tests.helpers import feed

        detector = CellCSPOT(small_query)
        feed(detector, objects, small_query.window_length)
        assert monitor.result().score == pytest.approx(detector.current_score())

    def test_advance_time_expires_objects(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="ccs")
        monitor.push(SpatialObject(x=1.0, y=1.0, timestamp=0.0))
        assert monitor.advance_time(1_000.0) is None

    def test_window_state_snapshot(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        monitor.push(SpatialObject(x=1.0, y=1.0, timestamp=0.0))
        state = monitor.window_state()
        assert state.total_objects == 1

    def test_is_stable_flag(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        monitor.push(SpatialObject(x=1.0, y=1.0, timestamp=0.0, object_id=0))
        assert not monitor.is_stable
        monitor.push(SpatialObject(x=1.0, y=1.0, timestamp=100.0, object_id=1))
        assert monitor.is_stable

    def test_top_k_passthrough(self, topk_query):
        monitor = SurgeMonitor(topk_query, algorithm="kgaps")
        for obj in make_objects(30, seed=3):
            monitor.push(obj)
        top = monitor.top_k()
        assert 1 <= len(top) <= topk_query.k
        scores = [r.score for r in top]
        assert scores == sorted(scores, reverse=True)

    def test_push_events_directly(self, small_query):
        from repro.streams.windows import SlidingWindowPair

        monitor = SurgeMonitor(small_query, algorithm="ccs")
        windows = SlidingWindowPair(small_query.window_length)
        events = windows.observe(SpatialObject(x=0.5, y=0.5, timestamp=0.0, weight=2.0))
        result = monitor.push_events(events)
        assert result.score == pytest.approx(0.1)


class TestChunkedRun:
    """``run(stream, chunk_size=N)`` rides push_many and matches the event loop."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    @pytest.mark.parametrize("name", ["ccs", "gaps", "kccs"])
    def test_chunked_run_parity_with_per_event_loop(self, small_query, name, chunk_size):
        stream = make_objects(60, seed=11)
        per_event = list(SurgeMonitor(small_query, algorithm=name).run(stream))
        chunked = list(
            SurgeMonitor(small_query, algorithm=name).run(stream, chunk_size=chunk_size)
        )
        # One result per chunk, and each chunk result equals the per-event
        # result at the same stream position (up to fp associativity).
        assert len(chunked) == -(-len(stream) // chunk_size)
        for index, result in enumerate(chunked):
            reference = per_event[min((index + 1) * chunk_size, len(stream)) - 1]
            if reference is None:
                assert result is None
            else:
                assert result is not None
                assert result.score == pytest.approx(reference.score, rel=1e-9)

    def test_chunked_run_counts_objects(self, small_query):
        stream = make_objects(25, seed=4)
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        list(monitor.run(stream, chunk_size=10))
        assert monitor.objects_seen == len(stream)

    def test_chunked_run_accepts_lazy_streams(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        results = list(monitor.run(iter(make_objects(10, seed=4)), chunk_size=4))
        assert len(results) == 3

    def test_chunk_size_must_be_positive(self, small_query):
        monitor = SurgeMonitor(small_query, algorithm="gaps")
        with pytest.raises(ValueError):
            list(monitor.run(make_objects(3), chunk_size=0))
