"""Differential + fault-injection suite for the distributed shard tier.

The contract under test: the ``remote`` executor — shards hosted in
separate worker processes behind the coordinator's retry/heartbeat/
failover machinery — is *observationally identical* to the in-process
``serial`` executor:

* the full 10-detector differential replay (all detector names,
  heterogeneous keywords / rectangles / windows / k) is bit-identical to
  the single-monitor oracle under both execution plans;
* a worker SIGKILLed mid-stream is invisible in the results: its shards
  fail over to a survivor (checkpoint base + ledger replay) and the
  replayed trace still matches the oracle bit for bit;
* a retried scatter (deadline expired, worker merely slow) never
  double-applies a chunk — the worker's per-shard ``seq`` dedupe cache
  answers the resend, and the stale duplicate reply is discarded;
* elastic membership: a worker joining mid-stream takes shards at the
  next safe boundary without changing any answer.

Everything socket-level runs against real TCP connections on loopback;
the :class:`~repro.distributed.worker.WorkerShardHost` dedupe semantics
also get direct socket-free unit tests.
"""

from __future__ import annotations

import signal
import socket
import threading
import time

import pytest

from repro.core.query import SurgeQuery
from repro.distributed.executor import (
    REMOTE_CHECKPOINT_FLOOR_CHUNKS,
    RemoteExecutor,
)
from repro.distributed.protocol import (
    DISTRIBUTED_SCHEMA,
    assign_frame,
    decode_payload,
    encode_payload,
    heartbeat_frame,
    hello_frame,
    recv_frame,
    release_frame,
    scatter_frame,
    send_frame,
)
from repro.distributed.stats import DistributedStats
from repro.distributed.worker import WorkerShardHost
from repro.server.metrics import render_prometheus
from repro.server.protocol import ProtocolError
from repro.service import QuerySpec, SurgeService, make_executor
from repro.service.shards import ShardState
from repro.state import CheckpointPolicy
from tests.helpers import make_objects
from tests.test_service_differential import (
    CHUNK_SIZE,
    make_keyword_stream,
    make_specs,
    replay_oracle,
    result_key,
)

#: Options that make a test-owned remote fleet self-contained and quick
#: to declare losses (the defaults are tuned for production patience).
FAST_FLEET = {
    "spawn_workers": 2,
    "workers": 2,
    "join_timeout": 60.0,
    "heartbeat_interval": 0.2,
    "heartbeat_miss_budget": 2,
}


def spec(query_id="q", **query_kwargs) -> QuerySpec:
    defaults = dict(rect_width=1.0, rect_height=1.0, window_length=20.0)
    defaults.update(query_kwargs)
    return QuerySpec(
        query_id=query_id, query=SurgeQuery(**defaults), backend="python"
    )


@pytest.fixture(scope="module")
def stream():
    return make_keyword_stream()


@pytest.fixture(scope="module")
def oracle(stream):
    return replay_oracle(stream, make_specs())


# ---------------------------------------------------------------------------
# WorkerShardHost: the dedupe/assignment brain, socket-free
# ---------------------------------------------------------------------------
class TestWorkerShardHost:
    def assign(self, host, shard=0, seq=1):
        frame = assign_frame(shard, seq, ("specs", (spec("a"),), True))
        return host.handle_frame(frame)

    def test_assign_builds_and_reports_pipelines(self):
        host = WorkerShardHost()
        reply = self.assign(host)
        assert reply["type"] == "reply"
        assert decode_payload(reply["payload"]) == ["a"]
        assert 0 in host.shards

    def test_retried_scatter_is_not_double_applied(self):
        """The at-most-once core: a repeated seq answers from the cache."""
        host = WorkerShardHost()
        self.assign(host)
        chunk = make_objects(20, seed=3)
        frame = scatter_frame(0, 2, ("chunk", chunk, 0))
        first = host.handle_frame(frame)
        second = host.handle_frame(frame)  # the coordinator's resend
        assert second is first  # cached, not re-computed

        # The shard saw the chunk exactly once: its results match a fresh
        # shard that applied the message a single time.
        oracle_shard = ShardState([spec("a")], True)
        oracle_shard.handle(("chunk", chunk, 0))
        results = host.handle_frame(scatter_frame(0, 3, ("results",)))
        got = decode_payload(results["payload"])
        want = oracle_shard.handle(("results",))
        assert [(qid, result_key(r)) for qid, r in got] == [
            (qid, result_key(r)) for qid, r in want
        ]

    def test_checkpoint_reply_is_a_ckpt_ack(self, tmp_path):
        host = WorkerShardHost()
        self.assign(host)
        path = str(tmp_path / "shard-00.g000001.ckpt")
        reply = host.handle_frame(scatter_frame(0, 2, ("checkpoint", path, {})))
        assert reply["type"] == "ckpt_ack"

    def test_heartbeat_bye_and_unknown_frames(self):
        host = WorkerShardHost()
        ack = host.handle_frame(heartbeat_frame(7))
        assert ack["type"] == "heartbeat_ack" and ack["seq"] == 7
        assert host.handle_frame({"type": "bye"}) is None
        with pytest.raises(ProtocolError, match="unexpected frame"):
            host.handle_frame({"type": "results"})

    def test_deterministic_shard_failure_becomes_an_error_frame(self):
        host = WorkerShardHost()
        self.assign(host)
        reply = host.handle_frame(scatter_frame(0, 2, ("bogus",)))
        assert reply["type"] == "error"
        assert reply["error_type"] == "ValueError"
        assert "unknown shard message" in reply["error"]
        # An unassigned shard is a deterministic error too, not a crash.
        reply = host.handle_frame(scatter_frame(5, 1, ("results",)))
        assert reply["type"] == "error" and reply["error_type"] == "KeyError"

    def test_release_drops_the_shard(self):
        host = WorkerShardHost()
        self.assign(host)
        reply = host.handle_frame(release_frame(0, 2))
        assert reply["type"] == "reply"
        assert 0 not in host.shards


# ---------------------------------------------------------------------------
# An in-test worker: the wire worker's loop, in a thread we can shape
# ---------------------------------------------------------------------------
class ThreadWorker:
    """A protocol-faithful worker in a thread (injectable slowness)."""

    def __init__(self, host, port, *, name="thread-worker", delay_first_chunk=0.0):
        self.delay_first_chunk = delay_first_chunk
        self._delayed = False
        self.brain = WorkerShardHost()
        self.sock = socket.create_connection((host, port), timeout=30.0)
        send_frame(self.sock, hello_frame(name, 0))
        ack = recv_frame(self.sock)
        assert ack["type"] == "hello_ack"
        assert ack["schema"] == DISTRIBUTED_SCHEMA
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            while True:
                frame = recv_frame(self.sock)
                if (
                    self.delay_first_chunk
                    and not self._delayed
                    and frame.get("type") == "scatter"
                    and decode_payload(frame["payload"])[0] == "chunk"
                ):
                    # Simulate a stall past the coordinator's RPC deadline;
                    # both the original and the resent copy are queued behind
                    # this sleep and answered in order (the second from the
                    # dedupe cache).
                    self._delayed = True
                    time.sleep(self.delay_first_chunk)
                reply = self.brain.handle_frame(frame)
                if reply is None:
                    return
                send_frame(self.sock, reply)
        except (ConnectionError, OSError, ProtocolError):
            return

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass
        self.thread.join(timeout=10.0)


# ---------------------------------------------------------------------------
# RPC semantics over real sockets
# ---------------------------------------------------------------------------
class TestRpcSemantics:
    def test_retried_scatter_applies_once_and_counts(self):
        """Deadline expiry -> backoff resend -> dedupe: applied exactly once."""
        chunk = make_objects(30, seed=5)
        workers = []
        executor = RemoteExecutor(
            [[spec("a")]],
            workers=1,
            rpc_timeout=0.3,
            rpc_retries=5,
            retry_backoff=0.01,
            heartbeat_interval=60.0,  # keep probes out of this exchange
            join_timeout=30.0,
            on_listening=lambda host, port: workers.append(
                ThreadWorker(host, port, delay_first_chunk=1.0)
            ),
        )
        try:
            executor.send(0, ("chunk", chunk, 0))
            assert executor.stats.rpc_timeouts >= 1
            assert executor.stats.rpc_retries >= 1

            # The stale replies to the resent copies are discarded by seq.
            got = executor.send(0, ("results",))
            assert executor.stats.replies_discarded >= 1

            oracle_shard = ShardState([spec("a")], True)
            oracle_shard.handle(("chunk", chunk, 0))
            want = oracle_shard.handle(("results",))
            assert [(qid, result_key(r)) for qid, r in got] == [
                (qid, result_key(r)) for qid, r in want
            ]
        finally:
            executor.close()
            for worker in workers:
                worker.close()

    def test_deterministic_shard_error_propagates_without_failover(self):
        executor = RemoteExecutor(
            [[spec("a")]],
            workers=1,
            spawn_workers=1,
            join_timeout=60.0,
            heartbeat_interval=60.0,
        )
        with executor:
            with pytest.raises(RuntimeError, match="unknown shard message"):
                executor.send(0, ("bogus",))
            # The worker survives the error and keeps serving.
            assert executor.send(0, ("results",)) == [("a", None)]
            assert executor.stats.workers_lost == 0

    def test_refuses_mismatched_hello(self):
        executor = RemoteExecutor(
            [[spec("a")]],
            workers=1,
            spawn_workers=1,
            join_timeout=60.0,
            heartbeat_interval=60.0,
        )
        with executor:
            sock = socket.create_connection((executor.host, executor.port), 10.0)
            try:
                send_frame(sock, {"type": "hello", "schema": "remote-shard/v0"})
                reply = recv_frame(sock)
                assert reply["type"] == "error"
                assert DISTRIBUTED_SCHEMA in reply["error"]
            finally:
                sock.close()

    def test_elastic_join_rebalances_at_a_safe_boundary(self):
        """A late worker takes shards (restore+replay) without changing answers."""
        specs = [[spec("a")], [spec("b")], [spec("c")], [spec("d")]]
        workers = []
        executor = RemoteExecutor(
            [list(shard) for shard in specs],
            workers=1,
            heartbeat_interval=60.0,
            join_timeout=30.0,
            on_listening=lambda host, port: workers.append(
                ThreadWorker(host, port, name="first")
            ),
        )
        serial = make_executor("serial", [list(shard) for shard in specs])
        try:
            chunk = make_objects(40, seed=9)
            executor.broadcast(("chunk", chunk, 0))
            serial.broadcast(("chunk", chunk, 0))

            workers.append(
                ThreadWorker(executor.host, executor.port, name="late")
            )
            deadline = time.monotonic() + 30.0
            while executor.stats.workers_joined < 2:
                assert time.monotonic() < deadline, "late worker never joined"
                time.sleep(0.02)

            # The next dispatch is the safe boundary: rebalance happens
            # before the message, and every answer still matches serial.
            chunk2 = make_objects(80, seed=9)[40:]
            executor.broadcast(("chunk", chunk2, 1))
            serial.broadcast(("chunk", chunk2, 1))
            got = executor.broadcast(("results",))
            want = serial.broadcast(("results",))
            assert [
                [(qid, result_key(r)) for qid, r in shard] for shard in got
            ] == [[(qid, result_key(r)) for qid, r in shard] for shard in want]
            assert executor.stats.shards_migrated >= 1
            assert len(workers[1].brain.shards) >= 1  # the joiner hosts shards
        finally:
            executor.close()
            serial.close()
            for worker in workers:
                worker.close()


# ---------------------------------------------------------------------------
# Differential: remote == the single-monitor oracle, both plans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shared_plan", [True, False], ids=["shared", "unshared"])
def test_remote_equals_independent_monitors(stream, oracle, shared_plan):
    """All 10 detectors, every chunk, bit for bit, across process boundaries."""
    oracle_trace, oracle_top_k, oracle_routed = oracle
    trace = []
    with SurgeService(
        make_specs(),
        shards=2,
        executor="remote",
        executor_options=dict(FAST_FLEET),
        shared_plan=shared_plan,
    ) as service:
        for updates in service.run(stream, CHUNK_SIZE):
            trace.append(
                {u.query_id: (result_key(u.result), u.objects_routed) for u in updates}
            )
        top_k = {
            query_id: tuple(result_key(r) for r in results)
            for query_id, results in service.top_k().items()
        }
        routed = {
            query_id: stats.objects_routed
            for query_id, stats in service.stats().per_query.items()
        }
    assert trace == oracle_trace
    assert top_k == oracle_top_k
    assert routed == oracle_routed


# ---------------------------------------------------------------------------
# Failover: SIGKILL a worker mid-stream, answers unchanged
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "with_checkpoint", [True, False], ids=["checkpointed", "ledger-only"]
)
def test_worker_kill_mid_stream_is_invisible(
    tmp_path, stream, oracle, with_checkpoint
):
    """Kill a worker process mid-run; failover keeps the trace bit-identical.

    With a checkpoint directory the failover base is the last durable
    generation plus a short ledger replay; without one the shard is rebuilt
    from specs and the full ledger — both must reproduce the oracle.
    """
    oracle_trace, oracle_top_k, _ = oracle
    options = dict(FAST_FLEET)
    kwargs = {}
    if with_checkpoint:
        kwargs = dict(
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        )
    trace = []
    with SurgeService(
        make_specs(),
        shards=2,
        executor="remote",
        executor_options=options,
        **kwargs,
    ) as service:
        executor = service._executor
        for index, updates in enumerate(service.run(stream, CHUNK_SIZE)):
            trace.append(
                {u.query_id: (result_key(u.result), u.objects_routed) for u in updates}
            )
            if index == 2:
                # SIGKILL, not terminate: no goodbye, no flush — the
                # coordinator must *discover* the loss.
                executor.spawned[0].send_signal(signal.SIGKILL)
        top_k = {
            query_id: tuple(result_key(r) for r in results)
            for query_id, results in service.top_k().items()
        }
        distributed = service.distributed_stats()

    assert trace == oracle_trace
    assert top_k == oracle_top_k
    assert distributed is not None
    assert distributed["workers_lost"] >= 1
    assert distributed["shards_failed_over"] >= 1
    assert distributed["failover_seconds"] > 0.0
    assert distributed["workers_alive"] == 1


def test_losing_every_worker_is_a_loud_error():
    """No survivors and no joiner inside join_timeout: fail with guidance."""
    executor = RemoteExecutor(
        [[spec("a")]],
        workers=1,
        spawn_workers=1,
        join_timeout=1.0,
        heartbeat_interval=60.0,
    )
    with executor:
        executor.send(0, ("chunk", make_objects(5), 0))
        executor.spawned[0].send_signal(signal.SIGKILL)
        with pytest.raises(RuntimeError, match="no live workers"):
            # Loop: the first dispatches may still think the socket is up;
            # the mid-frame failure declares the loss and the retry path
            # must then surface the no-survivors error.
            for _ in range(10):
                executor.send(0, ("results",))
                time.sleep(0.1)


# ---------------------------------------------------------------------------
# Service integration: checkpoint floor, stats surface, metrics
# ---------------------------------------------------------------------------
class TestServiceIntegration:
    def test_checkpoint_policy_clamped_to_remote_floor(self):
        with SurgeService([spec("a")]) as service:
            # The clamp helper is executor-independent; drive it directly.
            loose = CheckpointPolicy(every_chunks=10_000, every_stream_seconds=5.0)
            clamped = service._clamp_remote_policy(loose)
            assert clamped.every_chunks == REMOTE_CHECKPOINT_FLOOR_CHUNKS
            assert clamped.every_stream_seconds == 5.0
            unbounded = service._clamp_remote_policy(CheckpointPolicy())
            assert unbounded.every_chunks == REMOTE_CHECKPOINT_FLOOR_CHUNKS
            tight = CheckpointPolicy(every_chunks=8)
            assert service._clamp_remote_policy(tight) is tight

    def test_remote_attach_applies_the_floor(self, tmp_path):
        with SurgeService(
            [spec("a")],
            executor="remote",
            executor_options={
                "workers": 1,
                "spawn_workers": 1,
                "join_timeout": 60.0,
                "heartbeat_interval": 60.0,
            },
            checkpoint_dir=tmp_path,
            checkpoint_policy=CheckpointPolicy(every_chunks=100_000),
        ) as service:
            assert (
                service.checkpoint_policy.every_chunks
                == REMOTE_CHECKPOINT_FLOOR_CHUNKS
            )

    def test_distributed_stats_surface(self):
        with SurgeService([spec("a")]) as serial_service:
            assert serial_service.distributed_stats() is None
        with SurgeService(
            [spec("a")],
            executor="remote",
            executor_options={
                "workers": 1,
                "spawn_workers": 1,
                "join_timeout": 60.0,
                "heartbeat_interval": 60.0,
            },
        ) as service:
            service.push_many(make_objects(10))
            distributed = service.distributed_stats()
            assert distributed["workers_alive"] == 1
            assert distributed["workers_joined"] == 1
            assert distributed["workers_lost"] == 0
            assert distributed["ledger_depth"] >= 1  # the chunk just pushed

    def test_metrics_render_remote_families_only_when_distributed(self):
        base = {"service": {}, "queries": {}, "ingest": {}, "overload": {}}
        text = render_prometheus(dict(base))
        assert "repro_remote_" not in text
        assert "repro_checkpoint_prune_errors_total 0" in text

        stats = DistributedStats(
            rpc_retries=3, workers_lost=1, shards_failed_over=2,
            failover_seconds=0.5,
        )
        snapshot = stats.to_dict()
        snapshot.update(workers_alive=2, workers_total=3, ledger_depth=7)
        text = render_prometheus(dict(base, distributed=snapshot))
        assert "repro_remote_rpc_retries_total 3" in text
        assert "repro_remote_workers_lost_total 1" in text
        assert "repro_remote_shards_failed_over_total 2" in text
        assert "repro_remote_failover_seconds_total 0.5" in text
        assert "repro_remote_workers_alive 2" in text
        assert "repro_remote_ledger_depth 7" in text

    def test_remote_scatter_spans_reach_the_service_tracer(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with SurgeService(
            [spec("a")],
            executor="remote",
            executor_options={
                "workers": 1,
                "spawn_workers": 1,
                "join_timeout": 60.0,
                "heartbeat_interval": 60.0,
            },
            tracer=tracer,
        ) as service:
            service.push_many(make_objects(20))
            stages = service.stage_stats()
        assert "remote.scatter" in stages
        assert stages["remote.scatter"]["count"] >= 1
