"""Unit tests for B-CCS (static upper bound only)."""

import pytest

from tests.helpers import feed, make_objects, scores_close
from repro.baselines.bccs import StaticBoundCellCSPOT
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestStaticBoundDetector:
    def test_no_objects_no_result(self, small_query):
        assert StaticBoundCellCSPOT(small_query).result() is None

    def test_single_object(self, small_query):
        detector = StaticBoundCellCSPOT(small_query)
        feed(detector, [obj(1.0, 1.0, 0.0, 5.0)], small_query.window_length)
        assert detector.result().score == pytest.approx(0.25)

    def test_expiration_cleans_up(self, small_query):
        detector = StaticBoundCellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(1.0, 1.0, 0.0)):
            detector.process(event)
        for event in windows.advance_time(300.0):
            detector.process(event)
        assert detector.result() is None

    def test_matches_exact_detector_continuously(self, small_query):
        bccs = StaticBoundCellCSPOT(small_query)
        ccs = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in make_objects(80, seed=11, extent=5.0):
            for event in windows.observe(spatial):
                bccs.process(event)
                ccs.process(event)
            assert scores_close(bccs.current_score(), ccs.current_score())

    def test_triggers_more_searches_than_ccs(self, small_query):
        """The Table II effect: the loose static bound forces more searches."""
        objects = make_objects(150, seed=12, extent=4.0, max_weight=100.0)
        bccs = StaticBoundCellCSPOT(small_query)
        ccs = CellCSPOT(small_query)
        feed(bccs, objects, small_query.window_length)
        feed(ccs, objects, small_query.window_length)
        assert bccs.stats.events_triggering_search >= ccs.stats.events_triggering_search
        assert bccs.stats.search_trigger_ratio >= ccs.stats.search_trigger_ratio

    def test_far_low_weight_objects_do_not_trigger_searches(self, small_query):
        detector = StaticBoundCellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        # A heavy cluster establishes a high incumbent.
        for index in range(5):
            for event in windows.observe(obj(0.2, 0.2, index * 0.1, 100.0, index)):
                detector.process(event)
        searches = detector.stats.cells_searched
        # Tiny objects far away have static bounds far below the incumbent.
        for index in range(5, 20):
            spatial = obj(40.0 + index, 40.0, 1.0 + index * 0.01, 0.01, index)
            for event in windows.observe(spatial):
                detector.process(event)
        assert detector.stats.cells_searched == searches
