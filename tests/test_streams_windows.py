"""Unit tests for the sliding-window pair and its event stream."""

import pytest

from repro.streams.objects import EventKind, SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(timestamp, object_id=0, weight=1.0):
    return SpatialObject(x=0.0, y=0.0, timestamp=timestamp, weight=weight, object_id=object_id)


class TestConstruction:
    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowPair(0.0)
        with pytest.raises(ValueError):
            SlidingWindowPair(10.0, past_window_length=-1.0)

    def test_defaults_past_to_current(self):
        windows = SlidingWindowPair(10.0)
        assert windows.past_window_length == 10.0

    def test_distinct_past_length(self):
        windows = SlidingWindowPair(10.0, past_window_length=20.0)
        assert windows.past_window_length == 20.0


class TestEventLifecycle:
    def test_new_event_on_arrival(self):
        windows = SlidingWindowPair(10.0)
        events = windows.observe(obj(0.0, 1))
        assert [e.kind for e in events] == [EventKind.NEW]
        assert len(windows.current_window) == 1

    def test_out_of_order_arrival_rejected(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError):
            windows.observe(obj(4.0, 2))

    def test_grown_when_object_leaves_current_window(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(11.0, 2))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert kinds == [(EventKind.GROWN, 1), (EventKind.NEW, 2)]
        assert [o.object_id for o in windows.current_window] == [2]
        assert [o.object_id for o in windows.past_window] == [1]

    def test_expired_when_object_leaves_past_window(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        events = windows.observe(obj(21.0, 3))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert (EventKind.EXPIRED, 1) in kinds
        assert (EventKind.GROWN, 2) in kinds
        assert (EventKind.NEW, 3) in kinds
        assert [o.object_id for o in windows.past_window] == [2]

    def test_full_lifecycle_new_grown_expired_exactly_once(self):
        windows = SlidingWindowPair(5.0)
        seen: dict[int, list[EventKind]] = {}
        for index in range(40):
            for event in windows.observe(obj(index * 1.0, index)):
                seen.setdefault(event.obj.object_id, []).append(event.kind)
        # Flush the remainder so every object finishes its lifecycle.
        for event in windows.advance_time(1000.0):
            seen.setdefault(event.obj.object_id, []).append(event.kind)
        for object_id, kinds in seen.items():
            assert kinds == [EventKind.NEW, EventKind.GROWN, EventKind.EXPIRED], object_id

    def test_large_time_jump_skips_past_window_consistently(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(100.0, 2))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert (EventKind.GROWN, 1) in kinds
        assert (EventKind.EXPIRED, 1) in kinds
        assert kinds.index((EventKind.GROWN, 1)) < kinds.index((EventKind.EXPIRED, 1))
        assert len(windows) == 1

    def test_boundary_timestamps_half_open_windows(self):
        # Window length 10: at time t the current window is (t-10, t]; an
        # object created exactly at t-10 has just left it.
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(10.0, 2))
        assert [(e.kind, e.obj.object_id) for e in events] == [
            (EventKind.GROWN, 1),
            (EventKind.NEW, 2),
        ]


class TestAdvanceTime:
    def test_advance_time_without_arrival(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.advance_time(15.0)
        assert [e.kind for e in events] == [EventKind.GROWN]
        assert windows.time == 15.0

    def test_advance_time_backwards_rejected(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError):
            windows.advance_time(1.0)

    def test_observe_many_yields_all_events(self):
        windows = SlidingWindowPair(5.0)
        stream = [obj(t, i) for i, t in enumerate([0.0, 1.0, 6.0, 12.0])]
        events = list(windows.observe_many(stream))
        assert sum(1 for e in events if e.kind is EventKind.NEW) == 4
        assert sum(1 for e in events if e.kind is EventKind.GROWN) >= 2


class TestStateAndStability:
    def test_state_snapshot_is_immutable_copy(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        state = windows.state()
        windows.observe(obj(1.0, 2))
        assert len(state.current) == 1
        assert state.total_objects == 1
        assert state.window_length == 10.0

    def test_stability_requires_an_expiration(self):
        windows = SlidingWindowPair(10.0)
        assert not windows.is_stable()
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        assert not windows.is_stable()
        windows.observe(obj(21.0, 3))
        assert windows.is_stable()

    def test_len_counts_both_windows(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        assert len(windows) == 2

    def test_asymmetric_windows(self):
        windows = SlidingWindowPair(10.0, past_window_length=20.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))  # object 1 grows into the past window
        events = windows.observe(obj(25.0, 3))
        # Past window now covers (t-30, t-10]; object 1 (t=0) is still inside.
        assert all(e.kind is not EventKind.EXPIRED for e in events)
        events = windows.observe(obj(31.0, 4))
        assert any(
            e.kind is EventKind.EXPIRED and e.obj.object_id == 1 for e in events
        )


class TestOutOfOrderDiagnostics:
    def test_observe_reports_both_timestamps(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(7.0, 1))
        with pytest.raises(ValueError, match=r"out-of-order") as excinfo:
            windows.observe(obj(3.0, 2))
        message = str(excinfo.value)
        assert "t=3.0" in message  # the offending timestamp
        assert "t=7.0" in message  # the last-accepted stream time
        assert "id=2" in message

    def test_observe_batch_reports_position_and_both_timestamps(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError, match=r"out-of-order") as excinfo:
            windows.observe_batch([obj(6.0, 2), obj(2.0, 3)])
        message = str(excinfo.value)
        assert "t=2.0" in message
        assert "t=6.0" in message
        assert "position 1" in message
        assert "id=3" in message

    def test_rejecting_a_batch_leaves_the_windows_untouched(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError):
            windows.observe_batch([obj(6.0, 2), obj(2.0, 3)])
        assert windows.time == 5.0
        assert [o.object_id for o in windows.current_window] == [1]


class TestObserveBatch:
    def test_empty_batch_is_a_noop(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(1.0, 1))
        batch = windows.observe_batch([])
        assert len(batch) == 0
        assert batch.arrivals == 0
        assert windows.time == 1.0

    def test_batch_groups_events_by_kind(self):
        windows = SlidingWindowPair(5.0)
        batch = windows.observe_batch([obj(0.0, 1), obj(1.0, 2), obj(7.0, 3)])
        assert [e.obj.object_id for e in batch.new] == [1, 2, 3]
        assert [e.obj.object_id for e in batch.grown] == [1, 2]
        assert [e.obj.object_id for e in batch.expired] == []
        # Lifecycle-safe order: object 1's NEW precedes its GROWN.
        kinds = [(e.kind, e.obj.object_id) for e in batch.events]
        assert kinds.index((EventKind.NEW, 1)) < kinds.index((EventKind.GROWN, 1))

    def test_batch_spanning_both_windows_emits_full_lifecycles(self):
        windows = SlidingWindowPair(5.0)
        batch = windows.observe_batch([obj(0.0, 1), obj(100.0, 2)])
        assert [e.obj.object_id for e in batch.new] == [1, 2]
        assert [e.obj.object_id for e in batch.grown] == [1]
        assert [e.obj.object_id for e in batch.expired] == [1]
        assert windows.is_stable()
        assert [o.object_id for o in windows.current_window] == [2]
        assert len(windows.past_window) == 0


class TestLazyStateSnapshots:
    def test_repeated_reads_share_the_cached_snapshot(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        first = windows.state()
        assert windows.state() is first
        assert windows.current_window is first.current

    def test_observe_invalidates_the_cache(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        before = windows.state()
        windows.observe(obj(1.0, 2))
        after = windows.state()
        assert after is not before
        assert len(before.current) == 1
        assert len(after.current) == 2

    def test_advance_time_invalidates_the_cache(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        before = windows.state()
        windows.advance_time(2.0)  # no expiry, but the snapshot time changed
        after = windows.state()
        assert after is not before
        assert after.time == 2.0

    def test_observe_batch_invalidates_the_cache(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        before = windows.state()
        windows.observe_batch([obj(1.0, 2), obj(2.0, 3)])
        after = windows.state()
        assert after is not before
        assert len(after.current) == 3

    def test_event_batch_from_events_rebuilds_grouped_views(self):
        from repro.streams.objects import EventBatch

        windows = SlidingWindowPair(5.0)
        batch = windows.observe_batch([obj(0.0, 1), obj(1.0, 2), obj(7.0, 3)])
        rebuilt = EventBatch.from_events(batch.time, list(batch.events))
        assert rebuilt == batch
