"""Unit tests for the sliding-window pair and its event stream."""

import pytest

from repro.streams.objects import EventKind, SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(timestamp, object_id=0, weight=1.0):
    return SpatialObject(x=0.0, y=0.0, timestamp=timestamp, weight=weight, object_id=object_id)


class TestConstruction:
    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowPair(0.0)
        with pytest.raises(ValueError):
            SlidingWindowPair(10.0, past_window_length=-1.0)

    def test_defaults_past_to_current(self):
        windows = SlidingWindowPair(10.0)
        assert windows.past_window_length == 10.0

    def test_distinct_past_length(self):
        windows = SlidingWindowPair(10.0, past_window_length=20.0)
        assert windows.past_window_length == 20.0


class TestEventLifecycle:
    def test_new_event_on_arrival(self):
        windows = SlidingWindowPair(10.0)
        events = windows.observe(obj(0.0, 1))
        assert [e.kind for e in events] == [EventKind.NEW]
        assert len(windows.current_window) == 1

    def test_out_of_order_arrival_rejected(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError):
            windows.observe(obj(4.0, 2))

    def test_grown_when_object_leaves_current_window(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(11.0, 2))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert kinds == [(EventKind.GROWN, 1), (EventKind.NEW, 2)]
        assert [o.object_id for o in windows.current_window] == [2]
        assert [o.object_id for o in windows.past_window] == [1]

    def test_expired_when_object_leaves_past_window(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        events = windows.observe(obj(21.0, 3))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert (EventKind.EXPIRED, 1) in kinds
        assert (EventKind.GROWN, 2) in kinds
        assert (EventKind.NEW, 3) in kinds
        assert [o.object_id for o in windows.past_window] == [2]

    def test_full_lifecycle_new_grown_expired_exactly_once(self):
        windows = SlidingWindowPair(5.0)
        seen: dict[int, list[EventKind]] = {}
        for index in range(40):
            for event in windows.observe(obj(index * 1.0, index)):
                seen.setdefault(event.obj.object_id, []).append(event.kind)
        # Flush the remainder so every object finishes its lifecycle.
        for event in windows.advance_time(1000.0):
            seen.setdefault(event.obj.object_id, []).append(event.kind)
        for object_id, kinds in seen.items():
            assert kinds == [EventKind.NEW, EventKind.GROWN, EventKind.EXPIRED], object_id

    def test_large_time_jump_skips_past_window_consistently(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(100.0, 2))
        kinds = [(e.kind, e.obj.object_id) for e in events]
        assert (EventKind.GROWN, 1) in kinds
        assert (EventKind.EXPIRED, 1) in kinds
        assert kinds.index((EventKind.GROWN, 1)) < kinds.index((EventKind.EXPIRED, 1))
        assert len(windows) == 1

    def test_boundary_timestamps_half_open_windows(self):
        # Window length 10: at time t the current window is (t-10, t]; an
        # object created exactly at t-10 has just left it.
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.observe(obj(10.0, 2))
        assert [(e.kind, e.obj.object_id) for e in events] == [
            (EventKind.GROWN, 1),
            (EventKind.NEW, 2),
        ]


class TestAdvanceTime:
    def test_advance_time_without_arrival(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        events = windows.advance_time(15.0)
        assert [e.kind for e in events] == [EventKind.GROWN]
        assert windows.time == 15.0

    def test_advance_time_backwards_rejected(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(5.0, 1))
        with pytest.raises(ValueError):
            windows.advance_time(1.0)

    def test_observe_many_yields_all_events(self):
        windows = SlidingWindowPair(5.0)
        stream = [obj(t, i) for i, t in enumerate([0.0, 1.0, 6.0, 12.0])]
        events = list(windows.observe_many(stream))
        assert sum(1 for e in events if e.kind is EventKind.NEW) == 4
        assert sum(1 for e in events if e.kind is EventKind.GROWN) >= 2


class TestStateAndStability:
    def test_state_snapshot_is_immutable_copy(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        state = windows.state()
        windows.observe(obj(1.0, 2))
        assert len(state.current) == 1
        assert state.total_objects == 1
        assert state.window_length == 10.0

    def test_stability_requires_an_expiration(self):
        windows = SlidingWindowPair(10.0)
        assert not windows.is_stable()
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        assert not windows.is_stable()
        windows.observe(obj(21.0, 3))
        assert windows.is_stable()

    def test_len_counts_both_windows(self):
        windows = SlidingWindowPair(10.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))
        assert len(windows) == 2

    def test_asymmetric_windows(self):
        windows = SlidingWindowPair(10.0, past_window_length=20.0)
        windows.observe(obj(0.0, 1))
        windows.observe(obj(11.0, 2))  # object 1 grows into the past window
        events = windows.observe(obj(25.0, 3))
        # Past window now covers (t-30, t-10]; object 1 (t=0) is still inside.
        assert all(e.kind is not EventKind.EXPIRED for e in events)
        events = windows.observe(obj(31.0, 4))
        assert any(
            e.kind is EventKind.EXPIRED and e.obj.object_id == 1 for e in events
        )
