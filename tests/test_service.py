"""Unit tests for the multi-query service layer (spec / bus / facade)."""

from __future__ import annotations

import json

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.service import (
    EXECUTOR_NAMES,
    QuerySpec,
    SurgeService,
    load_query_specs,
    make_executor,
    make_query_grid,
)
from repro.service.bus import QueryStats, QueryUpdate, ResultBus
from repro.service.shards import ShardState
from repro.streams.objects import SpatialObject


def spec(query_id="q", keyword=None, **query_kwargs) -> QuerySpec:
    defaults = dict(rect_width=1.0, rect_height=1.0, window_length=20.0)
    defaults.update(query_kwargs)
    return QuerySpec(
        query_id=query_id,
        query=SurgeQuery(**defaults),
        keyword=keyword,
        backend="python",
    )


class TestQuerySpec:
    def test_rejects_empty_id(self):
        with pytest.raises(ValueError, match="query_id"):
            QuerySpec(query_id="", query=SurgeQuery(1.0, 1.0, 20.0))

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown detector"):
            QuerySpec(
                query_id="q", query=SurgeQuery(1.0, 1.0, 20.0), algorithm="nope"
            )

    def test_keyword_routing_predicate(self):
        concert = SpatialObject(
            x=0, y=0, timestamp=0, attributes={"keywords": ("concert",)}
        )
        plain = SpatialObject(x=0, y=0, timestamp=0)
        assert spec(keyword="concert").matches(concert)
        assert not spec(keyword="concert").matches(plain)
        assert spec(keyword=None).matches(plain)

    def test_dict_round_trip(self):
        original = QuerySpec(
            query_id="concerts",
            query=SurgeQuery(0.5, 0.25, 3600.0, alpha=0.3, k=3),
            algorithm="kccs",
            keyword="concert",
            backend="python",
        )
        assert QuerySpec.from_dict(original.to_dict()) == original

    def test_from_dict_requires_core_fields(self):
        with pytest.raises(ValueError, match="missing the required field"):
            QuerySpec.from_dict({"id": "q", "rect": [1, 1]})
        with pytest.raises(ValueError, match="width, height"):
            QuerySpec.from_dict({"id": "q", "rect": [1], "window": 20})

    def test_load_query_specs(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    {"id": "a", "rect": [1, 1], "window": 20},
                    {"id": "b", "rect": [2, 1], "window": 30, "keyword": "x"},
                ]
            )
        )
        specs = load_query_specs(path)
        assert [s.query_id for s in specs] == ["a", "b"]
        assert specs[1].keyword == "x"

    def test_load_query_specs_rejects_duplicates_and_empty(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps([]))
        with pytest.raises(ValueError, match="non-empty"):
            load_query_specs(path)
        path.write_text(
            json.dumps(
                [
                    {"id": "a", "rect": [1, 1], "window": 20},
                    {"id": "a", "rect": [1, 1], "window": 20},
                ]
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_query_specs(path)

    def test_make_query_grid_is_deterministic_and_heterogeneous(self):
        grid = make_query_grid(8, base_rect=(1.0, 1.0), base_window=20.0)
        assert [s.query_id for s in grid] == [f"q{i:03d}" for i in range(8)]
        assert grid == make_query_grid(8, base_rect=(1.0, 1.0), base_window=20.0)
        assert len({s.query.rect_width for s in grid}) > 1
        assert len({s.query.window_length for s in grid}) > 1
        with pytest.raises(ValueError):
            make_query_grid(0)


class TestResultBus:
    def update(self, query_id="q", score=None, routed=3, chunk=0):
        result = None
        return QueryUpdate(
            query_id=query_id,
            chunk_index=chunk,
            result=result,
            objects_routed=routed,
            busy_seconds=0.5,
            lag_seconds=0.7,
        )

    def test_latest_and_stats_accumulate(self):
        bus = ResultBus()
        bus.publish([self.update(chunk=0), self.update(chunk=1)])
        assert bus.latest("q").chunk_index == 1
        stats = bus.stats("q")
        assert stats.objects_routed == 6
        assert stats.chunks_processed == 2
        assert stats.busy_seconds == pytest.approx(1.0)
        assert stats.last_lag_seconds == pytest.approx(0.7)
        assert stats.objects_per_second == pytest.approx(6.0)

    def test_subscribers_see_updates_in_order(self):
        bus = ResultBus()
        seen = []
        bus.subscribe(lambda update: seen.append(update.chunk_index))
        bus.publish([self.update(chunk=0)])
        bus.publish([self.update(chunk=1)])
        assert seen == [0, 1]

    def test_forget_drops_query(self):
        bus = ResultBus()
        bus.publish([self.update()])
        bus.forget("q")
        assert bus.latest("q") is None
        assert bus.stats("q") == QueryStats()


class TestShardState:
    def test_add_remove_and_unknown_message(self):
        shard = ShardState([spec("a")])
        shard.add(spec("b"))
        with pytest.raises(ValueError, match="already registered"):
            shard.add(spec("a"))
        shard.remove("a")
        with pytest.raises(KeyError):
            shard.remove("a")
        with pytest.raises(ValueError, match="unknown shard message"):
            shard.handle(("bogus",))


class TestExecutors:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu", [[]])
        with pytest.raises(ValueError, match="at least one shard"):
            make_executor("serial", [])

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_send_and_broadcast(self, name):
        if name == "process":
            pytest.importorskip("multiprocessing")
        options = {}
        if name == "remote":
            # The coordinator waits for its fleet: spawn one local worker
            # instead of expecting an external `repro worker` process.
            options = {"workers": 1, "spawn_workers": 1, "join_timeout": 30.0}
        with make_executor(name, [[spec("a")], [spec("b")]], **options) as executor:
            assert executor.n_shards == 2
            assert executor.send(0, ("results",)) == [("a", None)]
            replies = executor.broadcast(("results",))
            assert replies == [[("a", None)], [("b", None)]]


class TestSurgeService:
    def test_validates_construction(self):
        with pytest.raises(ValueError, match="shards"):
            SurgeService(shards=0)
        with pytest.raises(ValueError, match="unknown executor"):
            SurgeService(executor="gpu")
        with pytest.raises(ValueError, match="already registered"):
            SurgeService([spec("a"), spec("a")])

    def test_round_robin_assignment_survives_removals(self):
        with SurgeService([spec("a"), spec("b"), spec("c")], shards=2) as service:
            assert service._shard_of == {"a": 0, "b": 1, "c": 0}
            service.remove_query("b")
            service.add_query(spec("d"))  # takes slot index 3 -> shard 1
            assert service._shard_of == {"a": 0, "c": 0, "d": 1}
            assert service.query_ids == ["a", "c", "d"]

    def test_duplicate_and_missing_registration_errors(self):
        with SurgeService([spec("a")]) as service:
            with pytest.raises(ValueError, match="already registered"):
                service.add_query(spec("a"))
            with pytest.raises(KeyError):
                service.remove_query("zzz")
            # The failed add must not leave a half-registered query behind.
            assert service.query_ids == ["a"]
            service.push_many(make_objects(5))

    def test_out_of_order_chunk_rejected(self):
        with SurgeService([spec("a")]) as service:
            service.push(SpatialObject(x=0, y=0, timestamp=10.0, object_id=0))
            with pytest.raises(ValueError, match="out-of-order"):
                service.push(SpatialObject(x=0, y=0, timestamp=5.0, object_id=1))
            with pytest.raises(ValueError, match="backwards"):
                service.advance_time(3.0)

    def test_empty_chunk_is_a_noop_update(self):
        with SurgeService([spec("a")]) as service:
            updates = service.push_many([])
            assert [u.objects_routed for u in updates] == [0]

    def test_updates_come_in_registration_order(self):
        with SurgeService([spec("a"), spec("b"), spec("c")], shards=2) as service:
            updates = service.push_many(make_objects(10))
            assert [u.query_id for u in updates] == ["a", "b", "c"]
            # The gather-barrier lag covers at least the query's own busy time.
            assert all(u.lag_seconds >= 0.0 for u in updates)

    def test_stats_aggregate_object_query_pairs(self):
        with SurgeService([spec("a"), spec("b")]) as service:
            for chunk_start in (0, 10):
                objs = make_objects(20, seed=1)[chunk_start : chunk_start + 10]
                service.push_many(objs)
            stats = service.stats()
            assert stats.objects_pushed == 20
            assert stats.chunks_pushed == 2
            assert stats.object_query_pairs == 40
            assert set(stats.per_query) == {"a", "b"}
            assert stats.pairs_per_second > 0

    def test_results_and_latest_agree(self):
        with SurgeService([spec("a")]) as service:
            service.push_many(make_objects(30, seed=2))
            results = service.results()
            latest = service.latest("a")
            assert latest is not None
            if results["a"] is None:
                assert latest.result is None
            else:
                assert latest.result is not None
                assert latest.result.score == results["a"].score

    def test_close_is_idempotent(self):
        service = SurgeService([spec("a")], executor="thread", shards=2)
        service.close()
        service.close()
