"""Unit tests for the stream runner (the paper's measurement protocol)."""

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.evaluation.runner import run_detector, run_detectors


@pytest.fixture
def query():
    return SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0, alpha=0.5)


@pytest.fixture
def stream():
    return make_objects(80, seed=31, extent=6.0, time_step=0.5)


class TestRunDetector:
    def test_run_by_name(self, query, stream):
        outcome = run_detector("gaps", query, stream)
        assert outcome.detector_name == "gaps"
        assert outcome.objects_total == len(stream)
        assert outcome.final_result is not None
        assert outcome.timing.count == outcome.objects_measured

    def test_warmup_stable_measures_fewer_objects(self, query, stream):
        stable = run_detector("gaps", query, stream, warmup="stable")
        everything = run_detector("gaps", query, stream, warmup="none")
        assert stable.objects_measured < everything.objects_measured
        assert everything.objects_measured == len(stream)

    def test_max_measured_objects_cap(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none", max_measured_objects=10)
        assert outcome.objects_measured == 10
        # The whole stream is still processed.
        assert outcome.objects_total == len(stream)

    def test_stream_span(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none")
        assert outcome.stream_span_seconds == pytest.approx(
            stream[-1].timestamp - stream[0].timestamp
        )

    def test_stats_are_propagated(self, query, stream):
        outcome = run_detector("ccs", query, stream)
        assert outcome.stats.events_processed > 0

    def test_final_top_k_for_topk_query(self, stream):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0, k=3)
        outcome = run_detector("kgaps", query, stream)
        assert 1 <= len(outcome.final_top_k) <= 3

    def test_accepts_prebuilt_detector(self, query, stream):
        from repro.core.gap import GapSurge

        detector = GapSurge(query)
        outcome = run_detector(detector, query, stream)
        assert outcome.detector_name == "gaps"

    def test_mean_time_property(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none")
        assert outcome.mean_time_per_object_micros == pytest.approx(
            outcome.timing.mean * 1e6
        )


class TestRunDetectors:
    def test_runs_every_name(self, query, stream):
        outcomes = run_detectors(["gaps", "mgaps"], query, stream)
        assert set(outcomes) == {"gaps", "mgaps"}
        for outcome in outcomes.values():
            assert outcome.objects_total == len(stream)

    def test_exact_and_approx_scores_relate(self, query, stream):
        outcomes = run_detectors(["ccs", "gaps"], query, stream)
        exact_score = outcomes["ccs"].final_result.score
        approx_score = outcomes["gaps"].final_result.score
        assert approx_score <= exact_score + 1e-9
        assert approx_score >= (1 - query.alpha) / 4.0 * exact_score - 1e-9


class TestChunkedIngestion:
    def test_chunked_run_matches_per_event_final_answer(self, query, stream):
        per_event = run_detector("ccs", query, stream, warmup="none")
        chunked = run_detector("ccs", query, stream, warmup="none", chunk_size=16)
        assert chunked.objects_total == per_event.objects_total
        assert chunked.objects_measured == len(stream)
        assert chunked.timing.count == len(stream)
        assert (chunked.final_result is None) == (per_event.final_result is None)
        assert chunked.final_result.score == pytest.approx(
            per_event.final_result.score, rel=1e-9
        )

    def test_chunked_run_with_stable_warmup_skips_early_chunks(self, query, stream):
        chunked = run_detector("gaps", query, stream, chunk_size=16)
        assert 0 < chunked.objects_measured < len(stream)
        # Whole chunks are measured: the count is a multiple of the chunk size
        # (the final chunk of a stream that is a multiple of 16 included).
        assert chunked.objects_measured % 16 == 0

    def test_invalid_chunk_size_rejected(self, query, stream):
        with pytest.raises(ValueError, match="chunk_size"):
            run_detector("gaps", query, stream, chunk_size=0)

    def test_run_detectors_passes_chunk_size_through(self, query, stream):
        results = run_detectors(["gaps", "mgaps"], query, stream, chunk_size=20)
        for outcome in results.values():
            assert outcome.objects_total == len(stream)

    def test_chunked_run_honours_max_measured_objects(self, query, stream):
        outcome = run_detector(
            "gaps", query, stream, warmup="none", chunk_size=16, max_measured_objects=10
        )
        assert outcome.objects_measured == 10
        assert outcome.timing.count == 10
        assert outcome.objects_total == len(stream)


class TestServiceRunner:
    def specs(self, n=3):
        from repro.service import make_query_grid

        return make_query_grid(
            n,
            base_rect=(1.0, 1.0),
            base_window=20.0,
            keywords=(None, "concert"),
            backend="python",
        )

    def keyword_stream(self, count=120):
        import random

        from repro.streams.objects import SpatialObject

        rng = random.Random(31)
        stream = []
        t = 0.0
        for index in range(count):
            t += rng.uniform(0.1, 0.4)
            attrs = {"keywords": ("concert",)} if index % 3 == 0 else {}
            stream.append(
                SpatialObject(
                    x=rng.uniform(0, 5),
                    y=rng.uniform(0, 5),
                    timestamp=t,
                    weight=rng.uniform(0.5, 5.0),
                    object_id=index,
                    attributes=attrs,
                )
            )
        return stream

    def test_run_service_reports_aggregate_and_per_query(self):
        from repro.evaluation.runner import run_service

        stream = self.keyword_stream()
        outcome = run_service(self.specs(), stream, shards=2, chunk_size=32)
        assert outcome.n_queries == 3
        assert outcome.objects_total == len(stream)
        assert outcome.object_query_pairs == 3 * len(stream)
        assert outcome.pairs_per_second > 0
        assert set(outcome.per_query) == {"q000", "q001", "q002"}
        # Unfiltered queries route the whole stream; keyword queries a third.
        assert outcome.per_query["q000"]["objects_routed"] == len(stream)
        assert outcome.per_query["q001"]["objects_routed"] == len(stream) // 3
        assert set(outcome.final_results) == set(outcome.per_query)

    def test_warm_up_does_not_pollute_lag_stats(self):
        from repro.evaluation.runner import run_service

        stream = self.keyword_stream(64)
        outcome = run_service(
            self.specs(2), stream, shards=2, executor="process", chunk_size=32
        )
        # The worker start-up round-trip happens before timing and outside
        # the bus, so per-query stats must reflect the stream chunks only
        # (2 chunks of 32) and the max lag must stay a per-chunk quantity,
        # not the hundreds-of-ms process spawn cost.
        for record in outcome.per_query.values():
            assert record["max_lag_seconds"] < outcome.wall_seconds + 1e-9
        assert outcome.pairs_per_second > 0

    def test_scenario_grid_covers_the_cartesian_product(self):
        from repro.evaluation.runner import service_scenario_grid

        stream = self.keyword_stream(60)
        grid = service_scenario_grid(
            stream,
            query_counts=(1, 2),
            shard_counts=(1, 2),
            executors=("serial",),
            chunk_size=30,
            base_rect=(1.0, 1.0),
            base_window=20.0,
            backend="python",
        )
        assert [(r.n_queries, r.shards, r.executor) for r in grid] == [
            (1, 1, "serial"),
            (1, 2, "serial"),
            (2, 1, "serial"),
            (2, 2, "serial"),
        ]
        # Same stream, same specs: per-query answers agree across shards.
        assert grid[2].final_results == grid[3].final_results
