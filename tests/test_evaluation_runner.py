"""Unit tests for the stream runner (the paper's measurement protocol)."""

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.evaluation.runner import run_detector, run_detectors


@pytest.fixture
def query():
    return SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0, alpha=0.5)


@pytest.fixture
def stream():
    return make_objects(80, seed=31, extent=6.0, time_step=0.5)


class TestRunDetector:
    def test_run_by_name(self, query, stream):
        outcome = run_detector("gaps", query, stream)
        assert outcome.detector_name == "gaps"
        assert outcome.objects_total == len(stream)
        assert outcome.final_result is not None
        assert outcome.timing.count == outcome.objects_measured

    def test_warmup_stable_measures_fewer_objects(self, query, stream):
        stable = run_detector("gaps", query, stream, warmup="stable")
        everything = run_detector("gaps", query, stream, warmup="none")
        assert stable.objects_measured < everything.objects_measured
        assert everything.objects_measured == len(stream)

    def test_max_measured_objects_cap(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none", max_measured_objects=10)
        assert outcome.objects_measured == 10
        # The whole stream is still processed.
        assert outcome.objects_total == len(stream)

    def test_stream_span(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none")
        assert outcome.stream_span_seconds == pytest.approx(
            stream[-1].timestamp - stream[0].timestamp
        )

    def test_stats_are_propagated(self, query, stream):
        outcome = run_detector("ccs", query, stream)
        assert outcome.stats.events_processed > 0

    def test_final_top_k_for_topk_query(self, stream):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0, k=3)
        outcome = run_detector("kgaps", query, stream)
        assert 1 <= len(outcome.final_top_k) <= 3

    def test_accepts_prebuilt_detector(self, query, stream):
        from repro.core.gap import GapSurge

        detector = GapSurge(query)
        outcome = run_detector(detector, query, stream)
        assert outcome.detector_name == "gaps"

    def test_mean_time_property(self, query, stream):
        outcome = run_detector("gaps", query, stream, warmup="none")
        assert outcome.mean_time_per_object_micros == pytest.approx(
            outcome.timing.mean * 1e6
        )


class TestRunDetectors:
    def test_runs_every_name(self, query, stream):
        outcomes = run_detectors(["gaps", "mgaps"], query, stream)
        assert set(outcomes) == {"gaps", "mgaps"}
        for outcome in outcomes.values():
            assert outcome.objects_total == len(stream)

    def test_exact_and_approx_scores_relate(self, query, stream):
        outcomes = run_detectors(["ccs", "gaps"], query, stream)
        exact_score = outcomes["ccs"].final_result.score
        approx_score = outcomes["gaps"].final_result.score
        assert approx_score <= exact_score + 1e-9
        assert approx_score >= (1 - query.alpha) / 4.0 * exact_score - 1e-9


class TestChunkedIngestion:
    def test_chunked_run_matches_per_event_final_answer(self, query, stream):
        per_event = run_detector("ccs", query, stream, warmup="none")
        chunked = run_detector("ccs", query, stream, warmup="none", chunk_size=16)
        assert chunked.objects_total == per_event.objects_total
        assert chunked.objects_measured == len(stream)
        assert chunked.timing.count == len(stream)
        assert (chunked.final_result is None) == (per_event.final_result is None)
        assert chunked.final_result.score == pytest.approx(
            per_event.final_result.score, rel=1e-9
        )

    def test_chunked_run_with_stable_warmup_skips_early_chunks(self, query, stream):
        chunked = run_detector("gaps", query, stream, chunk_size=16)
        assert 0 < chunked.objects_measured < len(stream)
        # Whole chunks are measured: the count is a multiple of the chunk size
        # (the final chunk of a stream that is a multiple of 16 included).
        assert chunked.objects_measured % 16 == 0

    def test_invalid_chunk_size_rejected(self, query, stream):
        with pytest.raises(ValueError, match="chunk_size"):
            run_detector("gaps", query, stream, chunk_size=0)

    def test_run_detectors_passes_chunk_size_through(self, query, stream):
        results = run_detectors(["gaps", "mgaps"], query, stream, chunk_size=20)
        for outcome in results.values():
            assert outcome.objects_total == len(stream)

    def test_chunked_run_honours_max_measured_objects(self, query, stream):
        outcome = run_detector(
            "gaps", query, stream, warmup="none", chunk_size=16, max_measured_objects=10
        )
        assert outcome.objects_measured == 10
        assert outcome.timing.count == 10
        assert outcome.objects_total == len(stream)
