"""Regression pin for the (now fixed) edge-tie region-reporting caveat.

All point-based detectors report the CSPOT bursty *point* exactly.  The
*region* handed to callers used to be derived via
:func:`repro.geometry.primitives.rect_from_top_right`, i.e. ``point -
extent``; when the optimal point lay exactly on a rectangle object's closed
edge, that inverse mapping could round to a different float than the forward
``object + extent`` mapping, and the derived region then excluded a boundary
object whose weight the point legitimately counts.  Regions are now mapped
back through :func:`repro.geometry.primitives.region_covering_point`, whose
edges are chosen so closed-region membership matches CSPOT coverage exactly,
so the region is faithful even on edge ties.

The construction below forces the tie deterministically: object B's
coverage interval starts at exactly ``A.x + width`` (a float that ``- width``
does not round back to ``A.x``), so the unique optimal point sits on A's
closed right/top edge.  The reported score counts both objects — and so must
the reported region.

``test_edge_tie_region_is_faithful`` was ``xfail(strict=True)`` while the
caveat stood; it now passes and pins the fix.
"""

from __future__ import annotations

import pytest

from repro.core.monitor import SurgeMonitor
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject

SIZE = 0.2  # 0.1 + 0.2 == 0.30000000000000004; (0.1 + 0.2) - 0.2 > 0.1


def edge_tie_monitor() -> tuple[SurgeMonitor, list[SpatialObject]]:
    query = SurgeQuery(rect_width=SIZE, rect_height=SIZE, window_length=20.0, alpha=0.5)
    monitor = SurgeMonitor(query, algorithm="ccs", backend="python")
    objects = [
        SpatialObject(x=0.1, y=0.1, timestamp=0.0, weight=5.0, object_id=0),
        # B's rectangle interval starts exactly at A's right edge — the
        # optimum is the single tie point (A.x + SIZE, ...).
        SpatialObject(x=0.1 + SIZE, y=0.1, timestamp=1.0, weight=5.0, object_id=1),
    ]
    for obj in objects:
        result = monitor.push(obj)
    assert result is not None
    return monitor, objects


def region_weight(monitor: SurgeMonitor, region) -> float:
    """Current-window weight inside the *reported region* (closed edges)."""
    return sum(
        obj.weight
        for obj in monitor.window_state().current
        if region.min_x <= obj.x <= region.max_x
        and region.min_y <= obj.y <= region.max_y
    )


def point_weight(monitor: SurgeMonitor, point) -> float:
    """Current-window weight covering the *reported point* in CSPOT space."""
    return sum(
        obj.weight
        for obj in monitor.window_state().current
        if obj.x <= point.x <= obj.x + SIZE and obj.y <= point.y <= obj.y + SIZE
    )


def test_edge_tie_point_is_exact():
    """The reported point really achieves the reported (tie) optimum."""
    monitor, objects = edge_tie_monitor()
    result = monitor.result()
    # Both objects' rectangles cover the reported point: the score counts
    # the full 10.0 weight, confirming the optimum is the tie point.
    assert point_weight(monitor, result.point) == pytest.approx(
        sum(obj.weight for obj in objects)
    )


def test_edge_tie_region_is_faithful():
    """The derived region covers the same weight as the bursty point.

    This was the caveat pin (``xfail(strict=True)`` until the fix):
    ``region_weight`` came up short because the region's ``min_x`` rounded to
    just above object A's x.  ``region_covering_point`` picks the edge so the
    boundary object is inside the closed region, making the two weights equal.
    """
    monitor, _ = edge_tie_monitor()
    result = monitor.result()
    assert region_weight(monitor, result.region) == pytest.approx(
        point_weight(monitor, result.point)
    )


def test_edge_tie_region_contains_reporting_object():
    """What does hold today: the region covers the tie point itself and B."""
    monitor, objects = edge_tie_monitor()
    region = monitor.result().region
    point = monitor.result().point
    assert region.min_x <= point.x <= region.max_x
    assert region.min_y <= point.y <= region.max_y
    assert region.min_x <= objects[1].x <= region.max_x
