"""Regression pin for the ROADMAP "Open items" edge-tie reporting caveat.

All point-based detectors report the CSPOT bursty *point* exactly, but the
*region* handed to callers is derived via
:func:`repro.geometry.primitives.rect_from_top_right`, i.e. ``point -
extent``.  When the optimal point lies exactly on a rectangle object's
closed edge, that inverse mapping can round to a different float than the
forward ``object + extent`` mapping, and the derived region then excludes a
boundary object whose weight the point legitimately counts: the score is
exact, the region representation is lossy.

The construction below forces the tie deterministically: object B's
coverage interval starts at exactly ``A.x + width`` (a float that ``- width``
does not round back to ``A.x``), so the unique optimal point sits on A's
closed right/top edge.  The reported score counts both objects; the
reported region contains only B.

The test is ``xfail(strict=True)``: it documents today's behaviour and will
*fail the suite the day the caveat is fixed*, so the fix flips the marker
deliberately (and updates the ROADMAP note and the
``tests/test_batch_parity.py`` module docstring, which verify reported
points in CSPOT space to sidestep exactly this).
"""

from __future__ import annotations

import pytest

from repro.core.monitor import SurgeMonitor
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject

SIZE = 0.2  # 0.1 + 0.2 == 0.30000000000000004; (0.1 + 0.2) - 0.2 > 0.1


def edge_tie_monitor() -> tuple[SurgeMonitor, list[SpatialObject]]:
    query = SurgeQuery(rect_width=SIZE, rect_height=SIZE, window_length=20.0, alpha=0.5)
    monitor = SurgeMonitor(query, algorithm="ccs", backend="python")
    objects = [
        SpatialObject(x=0.1, y=0.1, timestamp=0.0, weight=5.0, object_id=0),
        # B's rectangle interval starts exactly at A's right edge — the
        # optimum is the single tie point (A.x + SIZE, ...).
        SpatialObject(x=0.1 + SIZE, y=0.1, timestamp=1.0, weight=5.0, object_id=1),
    ]
    for obj in objects:
        result = monitor.push(obj)
    assert result is not None
    return monitor, objects


def region_weight(monitor: SurgeMonitor, region) -> float:
    """Current-window weight inside the *reported region* (closed edges)."""
    return sum(
        obj.weight
        for obj in monitor.window_state().current
        if region.min_x <= obj.x <= region.max_x
        and region.min_y <= obj.y <= region.max_y
    )


def point_weight(monitor: SurgeMonitor, point) -> float:
    """Current-window weight covering the *reported point* in CSPOT space."""
    return sum(
        obj.weight
        for obj in monitor.window_state().current
        if obj.x <= point.x <= obj.x + SIZE and obj.y <= point.y <= obj.y + SIZE
    )


def test_edge_tie_point_is_exact():
    """The reported point really achieves the reported (tie) optimum."""
    monitor, objects = edge_tie_monitor()
    result = monitor.result()
    # Both objects' rectangles cover the reported point: the score counts
    # the full 10.0 weight, confirming the optimum is the tie point.
    assert point_weight(monitor, result.point) == pytest.approx(
        sum(obj.weight for obj in objects)
    )


@pytest.mark.xfail(
    strict=True,
    reason="ROADMAP Open items: rect_from_top_right(point) rounds differently "
    "than object + extent on edge ties, so the derived region drops a "
    "boundary object the point legitimately counts (region representation "
    "is lossy; scores and points are exact)",
)
def test_edge_tie_region_is_faithful():
    """The derived region should cover the same weight as the bursty point.

    This is the caveat pin: today ``region_weight < point_weight`` because
    the region's ``min_x`` rounds to just above object A's x.  When a future
    PR makes the region mapping faithful on edge ties, this starts passing
    and ``strict=True`` forces that PR to remove the marker (and retire the
    ROADMAP note).
    """
    monitor, _ = edge_tie_monitor()
    result = monitor.result()
    assert region_weight(monitor, result.region) == pytest.approx(
        point_weight(monitor, result.point)
    )


def test_edge_tie_region_contains_reporting_object():
    """What does hold today: the region covers the tie point itself and B."""
    monitor, objects = edge_tie_monitor()
    region = monitor.result().region
    point = monitor.result().point
    assert region.min_x <= point.x <= region.max_x
    assert region.min_y <= point.y <= region.max_y
    assert region.min_x <= objects[1].x <= region.max_x
