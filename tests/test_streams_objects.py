"""Unit tests for spatial objects, rectangle objects and window events."""

import pytest

from repro.geometry.primitives import Point
from repro.streams.objects import EventKind, RectangleObject, SpatialObject, WindowEvent


class TestSpatialObject:
    def test_fields_and_location(self):
        obj = SpatialObject(x=1.0, y=2.0, timestamp=10.0, weight=3.0, object_id=7)
        assert obj.location == Point(1.0, 2.0)
        assert obj.weight == 3.0
        assert obj.object_id == 7

    def test_default_weight_is_one(self):
        obj = SpatialObject(x=0.0, y=0.0, timestamp=0.0)
        assert obj.weight == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SpatialObject(x=0.0, y=0.0, timestamp=0.0, weight=-1.0)

    def test_attributes_default_empty(self):
        obj = SpatialObject(x=0.0, y=0.0, timestamp=0.0)
        assert dict(obj.attributes) == {}

    def test_attributes_carry_payload(self):
        obj = SpatialObject(
            x=0.0, y=0.0, timestamp=0.0, attributes={"keywords": ("zika",)}
        )
        assert obj.attributes["keywords"] == ("zika",)

    def test_to_rectangle_uses_object_as_bottom_left(self):
        obj = SpatialObject(x=1.0, y=2.0, timestamp=5.0, weight=4.0, object_id=3)
        rect = obj.to_rectangle(2.0, 3.0)
        assert rect.rect.as_tuple() == (1.0, 2.0, 3.0, 5.0)
        assert rect.weight == 4.0
        assert rect.timestamp == 5.0
        assert rect.object_id == 3


class TestRectangleObject:
    def test_covers_closed_boundaries(self):
        rect = RectangleObject(x=0.0, y=0.0, width=1.0, height=2.0, timestamp=0.0)
        assert rect.covers(0.0, 0.0)
        assert rect.covers(1.0, 2.0)
        assert rect.covers(0.5, 1.0)
        assert not rect.covers(1.1, 1.0)
        assert not rect.covers(0.5, -0.1)

    def test_covers_point(self):
        rect = RectangleObject(x=0.0, y=0.0, width=1.0, height=1.0, timestamp=0.0)
        assert rect.covers_point(Point(0.5, 0.5))
        assert not rect.covers_point(Point(2.0, 0.5))

    def test_location_is_bottom_left(self):
        rect = RectangleObject(x=3.0, y=4.0, width=1.0, height=1.0, timestamp=0.0)
        assert rect.location == Point(3.0, 4.0)

    def test_reduction_theorem_correspondence(self):
        # Theorem 1: an object o lies in the region with top-right corner p
        # iff the rectangle object generated from o covers p.
        obj = SpatialObject(x=2.0, y=3.0, timestamp=0.0)
        width, height = 1.5, 1.0
        rect = obj.to_rectangle(width, height)
        for px, py, expected in [
            (2.0, 3.0, True),  # region [0.5,2]x[2,3] contains o
            (3.5, 4.0, True),  # region [2,3.5]x[3,4] contains o
            (3.6, 4.0, False),
            (2.0, 4.1, False),
        ]:
            from repro.geometry.primitives import rect_from_top_right

            region = rect_from_top_right(Point(px, py), width, height)
            assert region.contains_xy(obj.x, obj.y) == expected
            assert rect.covers(px, py) == expected


class TestWindowEvent:
    def test_kind_predicates(self):
        obj = SpatialObject(x=0.0, y=0.0, timestamp=0.0)
        new = WindowEvent(kind=EventKind.NEW, obj=obj, time=0.0)
        grown = WindowEvent(kind=EventKind.GROWN, obj=obj, time=1.0)
        expired = WindowEvent(kind=EventKind.EXPIRED, obj=obj, time=2.0)
        assert new.is_new and not new.is_grown and not new.is_expired
        assert grown.is_grown and not grown.is_new
        assert expired.is_expired and not expired.is_grown

    def test_event_kind_values(self):
        assert EventKind.NEW.value == "new"
        assert EventKind.GROWN.value == "grown"
        assert EventKind.EXPIRED.value == "expired"
