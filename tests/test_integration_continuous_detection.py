"""Integration tests: end-to-end continuous detection scenarios.

These tests run realistic (scaled-down) scenarios through the full public
API — generator → monitor → detector — and check behaviour the paper's
motivating examples promise: planted bursts are found when and where they
happen, detectors agree with each other, and keyword filtering finds the
planted case-study events.
"""

import pytest

pytest.importorskip("numpy", reason="the synthetic dataset generators need numpy (pip install .[fast])")

from repro.core.monitor import SurgeMonitor
from repro.core.query import SurgeQuery
from repro.datasets.keywords import KeywordEvent, filter_by_keyword, generate_keyword_stream
from repro.datasets.profiles import TAXI_PROFILE
from repro.datasets.synthetic import BurstSpec, StreamConfig, generate_stream
from repro.datasets.workloads import default_query_for_profile
from repro.geometry.primitives import Rect

EXTENT = Rect(0.0, 0.0, 100.0, 100.0)


def burst_scenario(seed=5):
    """Low uniform background plus one intense localized burst near the end."""
    burst = BurstSpec(
        center_x=30.0,
        center_y=70.0,
        radius_x=0.5,
        radius_y=0.5,
        start_time=2800.0,
        duration=300.0,
        rate_multiplier=4.0,
    )
    config = StreamConfig(
        extent=EXTENT,
        n_objects=450,
        arrival_rate_per_hour=500.0,
        weight_range=(1.0, 5.0),
        hotspot_count=6,
        uniform_fraction=0.8,
        bursts=(burst,),
        seed=seed,
    )
    return generate_stream(config), burst


class TestBurstDetection:
    @pytest.mark.parametrize("algorithm", ["ccs", "gaps", "mgaps"])
    def test_planted_burst_is_detected_while_active(self, algorithm):
        stream, burst = burst_scenario()
        query = SurgeQuery(
            rect_width=3.0, rect_height=3.0, window_length=400.0, alpha=0.7
        )
        monitor = SurgeMonitor(query, algorithm=algorithm)
        hits = 0
        checks = 0
        for obj in stream:
            result = monitor.push(obj)
            in_burst_window = (
                burst.start_time + 100.0 <= obj.timestamp <= burst.start_time + burst.duration
            )
            if result is None or not in_burst_window:
                continue
            checks += 1
            if result.region.contains_xy(burst.center_x, burst.center_y):
                hits += 1
        assert checks > 0
        # The burst is by far the densest area; the detector should point at
        # it for the vast majority of the burst period.
        assert hits / checks > 0.8

    def test_detection_follows_the_burst_not_the_background(self):
        stream, burst = burst_scenario(seed=9)
        query = SurgeQuery(rect_width=3.0, rect_height=3.0, window_length=400.0, alpha=0.7)
        monitor = SurgeMonitor(query, algorithm="ccs")
        before_scores = []
        during_scores = []
        for obj in stream:
            result = monitor.push(obj)
            if result is None:
                continue
            if obj.timestamp < burst.start_time:
                before_scores.append(result.score)
            elif obj.timestamp <= burst.start_time + burst.duration:
                during_scores.append(result.score)
        assert during_scores
        assert max(during_scores) > 3.0 * max(before_scores)


class TestDetectorAgreementOnProfileStream:
    def test_exact_detectors_agree_on_taxi_like_stream(self):
        from repro.datasets.synthetic import generate_profile_stream

        stream = generate_profile_stream(TAXI_PROFILE, n_objects=250, seed=3)
        query = default_query_for_profile(TAXI_PROFILE, window_seconds=60.0)
        ccs = SurgeMonitor(query, algorithm="ccs")
        base = SurgeMonitor(query, algorithm="base")
        for obj in stream:
            a = ccs.push(obj)
            b = base.push(obj)
            score_a = a.score if a else 0.0
            score_b = b.score if b else 0.0
            assert abs(score_a - score_b) <= 1e-6 * max(1.0, score_a)

    def test_approximation_quality_on_taxi_like_stream(self):
        from repro.datasets.synthetic import generate_profile_stream

        stream = generate_profile_stream(TAXI_PROFILE, n_objects=250, seed=4)
        query = default_query_for_profile(TAXI_PROFILE, window_seconds=60.0, alpha=0.5)
        exact = SurgeMonitor(query, algorithm="ccs")
        approx = SurgeMonitor(query, algorithm="mgaps")
        ratios = []
        for obj in stream:
            a = exact.push(obj)
            b = approx.push(obj)
            if a is not None and a.score > 0:
                ratios.append((b.score if b else 0.0) / a.score)
        assert ratios
        # Theoretical bound is 12.5%; in practice MGAPS does far better.
        assert min(ratios) >= (1 - query.alpha) / 4.0 - 1e-9
        assert sum(ratios) / len(ratios) > 0.5


class TestKeywordCaseStudy:
    def test_concert_event_found_by_keyword_filtering(self):
        event = KeywordEvent(
            keyword="concert",
            center_x=60.0,
            center_y=40.0,
            start_time=2000.0,
            duration=600.0,
            radius_x=1.0,
            radius_y=1.0,
            rate_multiplier=4.0,
        )
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=600,
            arrival_rate_per_hour=700.0,
            events=(event,),
            seed=7,
        )
        filtered = filter_by_keyword(stream, "concert")
        assert 0 < len(filtered) < len(stream)

        query = SurgeQuery(rect_width=5.0, rect_height=5.0, window_length=600.0, alpha=0.6)
        monitor = SurgeMonitor(query, algorithm="ccs")
        detected_during_event = None
        for obj in filtered:
            result = monitor.push(obj)
            if event.start_time + 200 <= obj.timestamp <= event.start_time + event.duration:
                detected_during_event = result
        assert detected_during_event is not None
        assert detected_during_event.region.intersects(event.region)

    def test_unrelated_keyword_does_not_see_the_event(self):
        event = KeywordEvent(
            keyword="concert",
            center_x=60.0,
            center_y=40.0,
            start_time=2000.0,
            duration=600.0,
            radius_x=1.0,
            radius_y=1.0,
            rate_multiplier=8.0,
        )
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=400,
            arrival_rate_per_hour=1200.0,
            events=(event,),
            seed=8,
        )
        other = filter_by_keyword(stream, "weather")
        assert all(o.attributes.get("event") != "concert" for o in other)


class TestTopKIntegration:
    def test_topk_detectors_report_distinct_hotspots(self):
        bursts = tuple(
            BurstSpec(
                center_x=cx,
                center_y=cy,
                radius_x=0.4,
                radius_y=0.4,
                start_time=1000.0,
                duration=500.0,
                rate_multiplier=rate,
            )
            for cx, cy, rate in [(20.0, 20.0, 3.0), (50.0, 60.0, 2.5), (80.0, 30.0, 2.0)]
        )
        config = StreamConfig(
            extent=EXTENT,
            n_objects=250,
            arrival_rate_per_hour=400.0,
            uniform_fraction=1.0,
            hotspot_count=1,
            weight_range=(1.0, 3.0),
            bursts=bursts,
            seed=12,
        )
        stream = generate_stream(config)
        query = SurgeQuery(
            rect_width=4.0, rect_height=4.0, window_length=500.0, alpha=0.5, k=3
        )
        monitor = SurgeMonitor(query, algorithm="kccs")
        final = None
        for obj in stream:
            monitor.push(obj)
            if 1400.0 <= obj.timestamp <= 1800.0:
                final = monitor.top_k()
        assert final is not None
        assert len(final) == 3
        centres_found = 0
        for cx, cy, _ in [(20.0, 20.0, 12.0), (50.0, 60.0, 9.0), (80.0, 30.0, 6.0)]:
            if any(region.region.contains_xy(cx, cy) for region in final):
                centres_found += 1
        assert centres_found >= 2
