"""Differential suite: the multi-query service ≡ N independent monitors.

The defining contract of :class:`repro.service.SurgeService` is that
registering N queries on one shared stream is *observationally identical* to
running N private :class:`~repro.core.monitor.SurgeMonitor`\\ s, each over
the keyword-filtered substream, with the same chunk boundaries:

* one service hosting a query per detector name (all 10
  :data:`~repro.core.monitor.DETECTOR_NAMES`, heterogeneous keywords /
  rectangle sizes / window lengths / k) is replayed chunk by chunk, and
  after **every** chunk each query's update must match its oracle monitor
  bit for bit — score, region, point, and top-k lists;
* the whole replay is repeated under every executor backend (``serial``,
  ``thread``, ``process``), several shard counts, and both execution plans
  (the shared-work plan — inverted keyword routing + shared window groups
  and detector units — and the per-query predicate-scan plan); the
  per-chunk traces must be identical across all of them — sharding, the
  execution backend, and the shared plan must never change an answer;
* routing statistics (objects routed per query) must equal the oracle
  filter counts.

Chunk sizes are chosen to hit ragged boundaries (chunks that split expiry
runs) and a chunk larger than the remaining stream.
"""

from __future__ import annotations

import random

import pytest

from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor
from repro.core.query import SurgeQuery
from repro.datasets.keywords import filter_by_keyword, keyword_predicate
from repro.service import QuerySpec, SurgeService
from repro.streams.objects import SpatialObject
from repro.streams.sources import iter_chunks

VOCABULARY = ("concert", "parade", "zika", "festival")

#: (executor, shards, shared_plan) combinations replayed against the oracle.
#: The serial single-shard unshared run is literally the oracle's own
#: protocol; everything else — other backends, other shard counts, and the
#: shared-work execution plan — must reproduce it exactly.
EXECUTOR_GRID = (
    ("serial", 1, False),
    ("serial", 1, True),
    ("serial", 3, True),
    ("thread", 2, True),
    ("process", 2, False),
    ("process", 2, True),
)

CHUNK_SIZE = 57  # ragged: does not divide the stream length


def make_keyword_stream(count: int = 340, seed: int = 97) -> list[SpatialObject]:
    """Keyword-tagged stream with irregular arrivals and one big time jump."""
    rng = random.Random(seed)
    stream = []
    t = 0.0
    for index in range(count):
        t += rng.uniform(0.05, 0.5)
        if index == count // 2:
            t += 150.0  # larger than every query window pair: full lifecycles
        keywords = (rng.choice(VOCABULARY),) if rng.random() < 0.85 else ()
        stream.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": keywords} if keywords else {},
            )
        )
    return stream


def make_specs() -> list[QuerySpec]:
    """One query per detector name, heterogeneous in every query dimension."""
    specs = []
    for index, name in enumerate(DETECTOR_NAMES):
        keyword = VOCABULARY[index % len(VOCABULARY)] if index % 3 else None
        size = (0.8, 1.0, 1.4)[index % 3]
        specs.append(
            QuerySpec(
                query_id=f"{name}-q",
                query=SurgeQuery(
                    rect_width=size,
                    rect_height=size,
                    window_length=(15.0, 20.0, 30.0)[index % 3],
                    alpha=0.5,
                    k=3 if name.startswith("k") else 1,
                ),
                algorithm=name,
                keyword=keyword,
                backend="python" if name in ("ccs", "bccs", "base", "ag2", "naive", "kccs") else None,
            )
        )
    return specs


def result_key(result):
    """Exact identity of a reported result (bitwise, no tolerance)."""
    if result is None:
        return None
    return (
        result.score,
        result.region.min_x,
        result.region.min_y,
        result.region.max_x,
        result.region.max_y,
        result.point.x,
        result.point.y,
        result.fc,
        result.fp,
    )


def replay_service(
    stream, specs, executor, shards, shared_plan=True, chunk_size=CHUNK_SIZE
):
    """Per-chunk (query_id -> result key) trace plus final top-k trace."""
    trace = []
    with SurgeService(
        specs, shards=shards, executor=executor, shared_plan=shared_plan
    ) as service:
        for updates in service.run(stream, chunk_size):
            trace.append(
                {u.query_id: (result_key(u.result), u.objects_routed) for u in updates}
            )
        top_k = {
            query_id: tuple(result_key(r) for r in results)
            for query_id, results in service.top_k().items()
        }
        routed = {
            query_id: stats.objects_routed
            for query_id, stats in service.stats().per_query.items()
        }
    return trace, top_k, routed


def replay_oracle(stream, specs, chunk_size=CHUNK_SIZE):
    """Independent per-query monitors over filtered substreams, same chunks."""
    monitors = {spec.query_id: spec.build_monitor() for spec in specs}
    predicates = {spec.query_id: keyword_predicate(spec.keyword) for spec in specs}
    trace = []
    routed = {spec.query_id: 0 for spec in specs}
    for chunk in iter_chunks(stream, chunk_size):
        step = {}
        for spec in specs:
            predicate = predicates[spec.query_id]
            matched = [obj for obj in chunk if predicate(obj)]
            monitor = monitors[spec.query_id]
            if matched:
                result = monitor.push_many(matched)
            else:
                result = monitor.result()
            routed[spec.query_id] += len(matched)
            step[spec.query_id] = (result_key(result), len(matched))
        trace.append(step)
    top_k = {
        query_id: tuple(result_key(r) for r in monitor.top_k())
        for query_id, monitor in monitors.items()
    }
    return trace, top_k, routed


@pytest.fixture(scope="module")
def stream():
    return make_keyword_stream()


@pytest.fixture(scope="module")
def oracle(stream):
    return replay_oracle(stream, make_specs())


@pytest.mark.parametrize(
    "executor,shards,shared_plan",
    EXECUTOR_GRID,
    ids=[
        f"{e}-{s}shard-{'shared' if p else 'unshared'}" for e, s, p in EXECUTOR_GRID
    ],
)
def test_service_equals_independent_monitors(
    stream, oracle, executor, shards, shared_plan
):
    """Every chunk, every detector: service result == oracle monitor result."""
    oracle_trace, oracle_top_k, oracle_routed = oracle
    trace, top_k, routed = replay_service(
        stream, make_specs(), executor, shards, shared_plan
    )
    assert len(trace) == len(oracle_trace)
    for chunk_index, (got, want) in enumerate(zip(trace, oracle_trace)):
        assert got == want, (
            f"{executor}/{shards} shards "
            f"({'shared' if shared_plan else 'unshared'} plan) diverged from "
            f"the single-monitor oracle at chunk {chunk_index}"
        )
    assert top_k == oracle_top_k
    assert routed == oracle_routed


def test_routing_matches_keyword_filter(stream):
    """Per-query routed counts equal the case-study filter on the substream."""
    specs = make_specs()
    _, _, routed = replay_oracle(stream, specs)
    for spec in specs:
        if spec.keyword is None:
            assert routed[spec.query_id] == len(stream)
        else:
            assert routed[spec.query_id] == len(
                filter_by_keyword(list(stream), spec.keyword)
            )


def test_chunk_boundaries_do_not_change_final_answers(stream):
    """Final answers agree across chunkings (scores to fp tolerance).

    Different chunk boundaries re-order the floating-point accumulation, so
    this is tolerance-based — the bitwise guarantee above is per-boundary.
    """
    specs = make_specs()
    baselines = {}
    for chunk_size in (1, 57, 10_000):
        _, top_k, _ = replay_oracle(stream, specs, chunk_size=chunk_size)
        for query_id, results in top_k.items():
            scores = tuple(r[0] for r in results)
            if query_id not in baselines:
                baselines[query_id] = scores
            else:
                assert len(scores) == len(baselines[query_id])
                for a, b in zip(scores, baselines[query_id]):
                    assert a == pytest.approx(b, rel=1e-9), (
                        f"{query_id}: final scores diverged at chunk size "
                        f"{chunk_size}"
                    )


@pytest.mark.parametrize("shared_plan", [True, False], ids=["shared", "unshared"])
def test_mid_stream_registration_equals_late_monitor(stream, shared_plan):
    """A query added mid-stream behaves like a monitor started at that point
    (under both execution plans; the shared plan's registration-epoch rule
    gets a dedicated same-keyword test in ``test_service_shared_plan.py``).
    """
    specs = make_specs()[:2]
    late_spec = QuerySpec(
        query_id="late",
        query=SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0),
        algorithm="ccs",
        keyword="concert",
        backend="python",
    )
    split = 170
    with SurgeService(
        specs, shards=2, executor="serial", shared_plan=shared_plan
    ) as service:
        for chunk in iter_chunks(stream[:split], CHUNK_SIZE):
            service.push_many(chunk)
        service.add_query(late_spec)
        for chunk in iter_chunks(stream[split:], CHUNK_SIZE):
            service.push_many(chunk)
        got = result_key(service.results()["late"])

    oracle_monitor = late_spec.build_monitor()
    predicate = keyword_predicate(late_spec.keyword)
    result = None
    for chunk in iter_chunks(stream[split:], CHUNK_SIZE):
        matched = [obj for obj in chunk if predicate(obj)]
        if matched:
            result = oracle_monitor.push_many(matched)
    assert got == result_key(result)
