"""Unit tests for GAP-SURGE (Algorithm 3) and its guarantee."""

import pytest

from tests.helpers import feed, feed_many, make_objects
from repro.core.brute import best_region_brute_force
from repro.core.cell_cspot import CellCSPOT
from repro.core.gap import GapSurge
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestCellAccumulation:
    def test_no_objects_no_result(self, small_query):
        assert GapSurge(small_query).result() is None

    def test_single_object_scores_its_cell(self, small_query):
        detector = GapSurge(small_query)
        feed(detector, [obj(2.5, 3.5, 0.0, weight=4.0)], small_query.window_length)
        result = detector.result()
        assert result.score == pytest.approx(4.0 / small_query.window_length)
        # The reported region is the grid cell containing the object.
        assert result.region.contains_xy(2.5, 3.5)
        assert result.region.as_tuple() == (2.0, 3.0, 3.0, 4.0)

    def test_objects_in_same_cell_accumulate(self, small_query):
        detector = GapSurge(small_query)
        feed(
            detector,
            [obj(2.1, 3.1, 0.0, 1.0, 0), obj(2.9, 3.9, 1.0, 2.0, 1)],
            small_query.window_length,
        )
        assert detector.result().score == pytest.approx(3.0 / small_query.window_length)
        assert detector.live_cell_count == 1

    def test_objects_in_different_cells_do_not_accumulate(self, small_query):
        detector = GapSurge(small_query)
        feed(
            detector,
            [obj(0.5, 0.5, 0.0, 2.0, 0), obj(5.5, 5.5, 1.0, 3.0, 1)],
            small_query.window_length,
        )
        assert detector.result().score == pytest.approx(3.0 / small_query.window_length)
        assert detector.live_cell_count == 2

    def test_grown_event_shifts_mass_and_lowers_score(self, small_query):
        detector = GapSurge(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(0.5, 0.5, 0.0, 4.0, 0)):
            detector.process(event)
        assert detector.result().score == pytest.approx(0.2)
        # Advance so the object grows into the past window.
        for event in windows.advance_time(25.0):
            detector.process(event)
        # fc = 0, fp = 0.2 -> burst score 0.
        assert detector.result().score == pytest.approx(0.0)

    def test_expired_event_empties_the_cell(self, small_query):
        detector = GapSurge(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(0.5, 0.5, 0.0, 4.0, 0)):
            detector.process(event)
        for event in windows.advance_time(100.0):
            detector.process(event)
        assert detector.result() is None
        assert detector.live_cell_count == 0

    def test_area_filter(self):
        from repro.geometry.primitives import Rect

        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=10.0,
            area=Rect(0.0, 0.0, 4.0, 4.0),
        )
        detector = GapSurge(query)
        feed(
            detector,
            [obj(1.0, 1.0, 0.0, 1.0, 0), obj(9.0, 9.0, 1.0, 50.0, 1)],
            query.window_length,
        )
        assert detector.result().score == pytest.approx(0.1)
        assert detector.stats.events_skipped == 1

    def test_top_k_returns_best_cells_in_order(self, small_query):
        detector = GapSurge(small_query)
        feed(
            detector,
            [
                obj(0.5, 0.5, 0.0, 5.0, 0),
                obj(2.5, 2.5, 1.0, 3.0, 1),
                obj(4.5, 4.5, 2.0, 1.0, 2),
            ],
            small_query.window_length,
        )
        top = detector.top_k(2)
        assert len(top) == 2
        assert top[0].score > top[1].score
        assert top[0].score == pytest.approx(0.25)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_score_at_least_quarter_of_one_minus_alpha(self, alpha):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=15.0, alpha=alpha)
        exact = CellCSPOT(query)
        approx = GapSurge(query)
        windows = feed_many([exact, approx], make_objects(90, seed=6, extent=6.0), 15.0)
        assert windows.is_stable()
        optimum = exact.current_score()
        assert optimum > 0
        bound = (1.0 - alpha) / 4.0
        assert approx.current_score() >= bound * optimum - 1e-9

    def test_guarantee_holds_continuously(self):
        query = SurgeQuery(rect_width=0.8, rect_height=0.8, window_length=12.0, alpha=0.4)
        exact = CellCSPOT(query)
        approx = GapSurge(query)
        windows = SlidingWindowPair(query.window_length)
        bound = (1.0 - query.alpha) / 4.0
        for spatial in make_objects(70, seed=13, extent=5.0):
            for event in windows.observe(spatial):
                exact.process(event)
                approx.process(event)
            optimum = exact.current_score()
            assert approx.current_score() >= bound * optimum - 1e-9

    def test_exactly_recovers_optimum_when_cluster_fits_a_cell(self, small_query):
        # All objects inside one grid cell: the cell *is* the optimal region.
        objects = [obj(0.2 + 0.05 * i, 0.2 + 0.05 * i, i * 0.1, 1.0, i) for i in range(5)]
        exact = CellCSPOT(small_query)
        approx = GapSurge(small_query)
        feed_many([exact, approx], objects, small_query.window_length)
        assert approx.current_score() == pytest.approx(exact.current_score())
