"""White-box invariant checks on Cell-CSPOT's per-cell state during a stream.

These tests re-derive, after every event of a random stream, the quantities
the detector maintains incrementally and check the invariants its pruning
logic relies on (Lemmas 2-4 and the Ud-tracks-candidate-score property).
They complement the black-box exactness tests by pinpointing *which* piece of
bookkeeping broke if a regression is introduced.
"""

import pytest

from tests.helpers import make_objects
from repro.core.burst import burst_score
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.streams.windows import SlidingWindowPair


def cell_true_maximum(detector, cell):
    """The true maximum burst score inside a cell, recomputed from scratch."""
    labeled = [
        LabeledRect(
            record.rect.x,
            record.rect.y,
            record.rect.x + record.rect.width,
            record.rect.y + record.rect.height,
            record.rect.weight,
            record.in_current,
        )
        for record in cell.records.values()
    ]
    outcome = sweep_bursty_point(
        labeled,
        alpha=detector.query.alpha,
        current_length=detector.query.current_length,
        past_length=detector.query.past_length,
        bounds=cell.bounds,
    )
    return 0.0 if outcome is None else outcome.score


@pytest.fixture
def detector_and_windows():
    query = SurgeQuery(rect_width=1.1, rect_height=0.9, window_length=12.0, alpha=0.6)
    return CellCSPOT(query), SlidingWindowPair(query.window_length)


class TestPerCellInvariants:
    def _run_checking(self, detector, windows, objects, check):
        for index, obj in enumerate(objects):
            for event in windows.observe(obj):
                detector.process(event)
            if index % 4 == 0:
                for key, cell in detector.cells.items():
                    check(detector, key, cell)

    def test_static_bound_dominates_cell_maximum(self, detector_and_windows):
        """Lemma 2: Us(c) is an upper bound on every point's score in c."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            true_max = cell_true_maximum(det, cell)
            assert cell.static_bound >= true_max - 1e-6 * max(1.0, true_max), key

        self._run_checking(detector, windows, make_objects(60, seed=51, extent=5.0), check)

    def test_dynamic_bound_dominates_cell_maximum(self, detector_and_windows):
        """Lemma 3: Ud(c), maintained through Equation 3, stays an upper bound."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            true_max = cell_true_maximum(det, cell)
            assert cell.dynamic_bound >= true_max - 1e-6 * max(1.0, true_max), key

        self._run_checking(detector, windows, make_objects(60, seed=52, extent=5.0), check)

    def test_valid_candidate_is_the_cell_maximum(self, detector_and_windows):
        """Lemma 4: a candidate kept valid across events equals the cell max."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            if not cell.has_valid_candidate():
                return
            true_max = cell_true_maximum(det, cell)
            assert cell.candidate.score == pytest.approx(true_max, rel=1e-6, abs=1e-9), key

        self._run_checking(detector, windows, make_objects(70, seed=53, extent=5.0), check)

    def test_dynamic_bound_tracks_valid_candidate_score(self, detector_and_windows):
        """The invariant the early-termination argument relies on."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            if not cell.has_valid_candidate():
                return
            assert cell.dynamic_bound == pytest.approx(
                cell.candidate.score, rel=1e-9, abs=1e-12
            ), key

        self._run_checking(detector, windows, make_objects(70, seed=54, extent=5.0), check)

    def test_candidate_window_scores_match_recount(self, detector_and_windows):
        """A valid candidate's stored (fc, fp) equal a from-scratch recount."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            if not cell.has_valid_candidate():
                return
            point = cell.candidate.point
            fc = sum(
                record.rect.weight
                for record in cell.records.values()
                if record.in_current and record.rect.covers(point.x, point.y)
            ) / det.query.current_length
            fp = sum(
                record.rect.weight
                for record in cell.records.values()
                if not record.in_current and record.rect.covers(point.x, point.y)
            ) / det.query.past_length
            assert cell.candidate.fc == pytest.approx(fc, rel=1e-6, abs=1e-9)
            assert cell.candidate.fp == pytest.approx(fp, rel=1e-6, abs=1e-9)
            assert cell.candidate.score == pytest.approx(
                burst_score(fc, fp, det.query.alpha), rel=1e-6, abs=1e-9
            )

        self._run_checking(detector, windows, make_objects(70, seed=55, extent=5.0), check)

    def test_cell_membership_matches_geometry(self, detector_and_windows):
        """Every stored rectangle genuinely overlaps its cell, and vice versa."""
        detector, windows = detector_and_windows

        def check(det, key, cell):
            for record in cell.records.values():
                assert record.rect.rect.intersects(cell.bounds)

        self._run_checking(detector, windows, make_objects(60, seed=56, extent=5.0), check)

    def test_global_result_is_max_over_cells(self, detector_and_windows):
        """The reported score equals the maximum true cell score."""
        detector, windows = detector_and_windows
        for index, obj in enumerate(make_objects(60, seed=57, extent=5.0)):
            for event in windows.observe(obj):
                detector.process(event)
            if index % 5:
                continue
            true_best = max(
                (cell_true_maximum(detector, cell) for cell in detector.cells.values()),
                default=0.0,
            )
            assert detector.current_score() == pytest.approx(true_best, rel=1e-6, abs=1e-9)
