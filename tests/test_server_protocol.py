"""Wire codec round-trips and frame-layer guards (``repro.server.protocol``).

The transport's one hard promise is *transparency*: anything the service
would see in-process must survive the wire byte-for-byte — float exactness
(the bit-identity checks lean on it), keyword tuples, and even poison
records with NaN timestamps, which must reach the quarantine screen rather
than be rejected by the transport.  The frame layer itself must refuse a
desynchronised or malicious length prefix before allocating.
"""

from __future__ import annotations

import math

import pytest

from repro.core.base import RegionResult
from repro.geometry.primitives import Point, Rect
from repro.server.protocol import (
    LENGTH_STRUCT,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServerError,
    decode_frame_body,
    decode_frame_length,
    decode_object,
    decode_result,
    encode_frame,
    encode_object,
    encode_result,
    encode_update,
    error_frame,
    overloaded_frame,
)
from repro.service.bus import QueryUpdate
from repro.streams.objects import SpatialObject


class TestFrames:
    def test_round_trip(self):
        frame = {"type": "ping", "nested": {"a": [1, 2.5, "x"]}}
        data = encode_frame(frame)
        length = decode_frame_length(data[: LENGTH_STRUCT.size])
        assert length == len(data) - LENGTH_STRUCT.size
        assert decode_frame_body(data[LENGTH_STRUCT.size :]) == frame

    def test_floats_round_trip_exactly(self):
        value = 0.1 + 0.2  # not representable as a short decimal
        data = encode_frame({"type": "x", "value": value})
        decoded = decode_frame_body(data[LENGTH_STRUCT.size :])
        assert decoded["value"] == value

    def test_nan_and_infinity_survive(self):
        data = encode_frame({"type": "x", "t": float("nan"), "w": float("inf")})
        decoded = decode_frame_body(data[LENGTH_STRUCT.size :])
        assert math.isnan(decoded["t"])
        assert decoded["w"] == float("inf")

    def test_length_prefix_guard(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame_length(LENGTH_STRUCT.pack(MAX_FRAME_BYTES + 1))

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame_length(b"\x00\x00")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame_body(b"{nope")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame_body(b"[1,2,3]")


class TestObjectCodec:
    def test_round_trip_with_keywords(self):
        obj = SpatialObject(
            x=1.25,
            y=-3.5,
            timestamp=17.125,
            weight=2.5,
            object_id=42,
            attributes={"keywords": ("concert", "parade"), "venue": "plaza"},
        )
        restored = decode_object(encode_object(obj))
        assert restored == obj
        assert restored.attributes["keywords"] == ("concert", "parade")

    def test_poison_record_passes_through(self):
        # The transport must not be stricter than in-process ingestion:
        # malformed records reach the quarantine screen untouched.
        record = {"x": "not-a-number", "timestamp": 1.0}
        assert decode_object(record) is record
        assert decode_object("garbage") == "garbage"

    def test_nan_timestamp_object_survives(self):
        obj = SpatialObject(x=0.0, y=0.0, timestamp=float("nan"), object_id=7)
        restored = decode_object(
            decode_frame_body(
                encode_frame({"type": "x", "o": encode_object(obj)})[
                    LENGTH_STRUCT.size :
                ]
            )["o"]
        )
        assert isinstance(restored, SpatialObject)
        assert math.isnan(restored.timestamp)


class TestResultCodec:
    def test_round_trip(self):
        result = RegionResult(
            region=Rect(0.5, 1.5, 2.0, 3.0),
            score=2.7182818,
            point=Point(1.0, 2.0),
            fc=5.5,
            fp=1.25,
        )
        assert decode_result(encode_result(result)) == result

    def test_none_round_trips(self):
        assert encode_result(None) is None
        assert decode_result(None) is None

    def test_update_frame_shape(self):
        update = QueryUpdate(
            query_id="kw",
            chunk_index=3,
            result=None,
            objects_routed=12,
            busy_seconds=0.5,
            lag_seconds=0.01,
        )
        frame = encode_update(update)
        assert frame["type"] == "result"
        assert frame["query_id"] == "kw"
        assert frame["chunk_index"] == 3
        assert frame["result"] is None
        assert frame["shed"] is False


class TestErrorFrames:
    def test_overloaded_frame_is_typed(self):
        frame = overloaded_frame("busy", depth_chunks=9.5, advice="back off")
        assert frame["type"] == "error"
        assert frame["code"] == 503
        assert frame["overloaded"] is True
        assert frame["depth_chunks"] == 9.5

    def test_server_error_surface(self):
        exc = ServerError(503, "busy", {"depth_chunks": 2.0})
        assert exc.overloaded
        assert exc.info["depth_chunks"] == 2.0
        assert not ServerError(404, "missing", {}).overloaded

    def test_error_frame_extra_fields(self):
        frame = error_frame(404, "unknown query", query_id="x")
        assert frame == {
            "type": "error",
            "code": 404,
            "error": "unknown query",
            "query_id": "x",
        }
