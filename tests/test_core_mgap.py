"""Unit tests for MGAP-SURGE (Algorithm 5)."""

import pytest

from tests.helpers import feed, feed_many, make_objects
from repro.core.cell_cspot import CellCSPOT
from repro.core.gap import GapSurge
from repro.core.mgap import MGapSurge
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestStructure:
    def test_uses_four_shifted_grids(self, small_query):
        detector = MGapSurge(small_query)
        assert len(detector.detectors) == 4
        origins = {
            (d.grid.origin_x, d.grid.origin_y) for d in detector.detectors
        }
        assert len(origins) == 4

    def test_no_objects_no_result(self, small_query):
        assert MGapSurge(small_query).result() is None

    def test_combined_stats_aggregate_sub_detectors(self, small_query):
        detector = MGapSurge(small_query)
        feed(detector, make_objects(20, seed=1), small_query.window_length)
        combined = detector.combined_stats
        assert combined.events_processed >= 4 * detector.stats.events_processed

    def test_area_filter_counts_skips_once(self):
        from repro.geometry.primitives import Rect

        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=10.0,
            area=Rect(0.0, 0.0, 2.0, 2.0),
        )
        detector = MGapSurge(query)
        feed(detector, [obj(5.0, 5.0, 0.0, 1.0, 0)], query.window_length)
        assert detector.stats.events_skipped == 1
        assert detector.result() is None


class TestQualityVersusSingleGrid:
    def test_never_worse_than_single_grid(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=15.0, alpha=0.5)
        single = GapSurge(query)
        multi = MGapSurge(query)
        feed_many([single, multi], make_objects(80, seed=3, extent=6.0), 15.0)
        assert multi.current_score() >= single.current_score() - 1e-12

    def test_recovers_optimum_for_cluster_straddling_grid_lines(self, small_query):
        # A tight cluster centred on a grid corner is split across four cells
        # of the aligned grid, but one of the shifted grids has a cell centred
        # on the corner and captures the full cluster.
        objects = [
            obj(0.95, 0.95, 0.0, 1.0, 0),
            obj(1.05, 0.95, 0.1, 1.0, 1),
            obj(0.95, 1.05, 0.2, 1.0, 2),
            obj(1.05, 1.05, 0.3, 1.0, 3),
        ]
        exact = CellCSPOT(small_query)
        single = GapSurge(small_query)
        multi = MGapSurge(small_query)
        feed_many([exact, single, multi], objects, small_query.window_length)
        assert single.current_score() == pytest.approx(exact.current_score() / 4.0)
        assert multi.current_score() == pytest.approx(exact.current_score())

    @pytest.mark.parametrize("alpha", [0.2, 0.8])
    def test_approximation_guarantee(self, alpha):
        query = SurgeQuery(rect_width=0.9, rect_height=1.1, window_length=12.0, alpha=alpha)
        exact = CellCSPOT(query)
        multi = MGapSurge(query)
        feed_many([exact, multi], make_objects(80, seed=8, extent=5.0), 12.0)
        optimum = exact.current_score()
        assert optimum > 0
        assert multi.current_score() >= (1.0 - alpha) / 4.0 * optimum - 1e-9


class TestTopK:
    def test_top_k_regions_are_non_overlapping(self, small_query):
        detector = MGapSurge(small_query)
        feed(detector, make_objects(60, seed=5, extent=6.0), small_query.window_length)
        top = detector.top_k(3)
        assert 1 <= len(top) <= 3
        for i, first in enumerate(top):
            for second in top[i + 1 :]:
                assert not first.region.intersects_interior(second.region)

    def test_top_k_scores_sorted(self, small_query):
        detector = MGapSurge(small_query)
        feed(detector, make_objects(60, seed=5, extent=6.0), small_query.window_length)
        scores = [r.score for r in detector.top_k(4)]
        assert scores == sorted(scores, reverse=True)
