"""Parity suite: batched ingestion must match one-at-a-time ingestion.

For every detector name the same stream is pushed through two monitors —
one object at a time (``push``, the per-event path) and in chunks
(``push_many`` → ``observe_batch`` + ``apply_events``, the batched path) —
and the reported results are compared at every chunk boundary.

Notes on the contract being asserted:

* the reported *score* must agree to within a tight floating-point tolerance
  (bulk maintenance may sum the same contributions in a different order);
* the reported *point* may be a different representative of the same optimal
  region (the bursty point of a snapshot is not unique — any point of the
  maximal arrangement face is exact), so for the exact detectors each
  reported point is additionally verified to achieve the reported score
  against the actual window contents.  The verification runs in CSPOT space
  (summing the rectangle objects covering the point), which is also how the
  reported region is now derived (``region_covering_point`` chooses region
  edges so closed-region membership matches CSPOT coverage exactly; the
  historical ``rect_from_top_right`` rounding caveat on edge ties is fixed
  and pinned by ``tests/test_region_edge_tie.py``);
* the window contents themselves must match exactly.

Chunkings are chosen so that chunk boundaries split window expiries (a chunk
starts mid-expiry-run) and so that at least one chunk contains a time jump
larger than both windows (objects whose whole NEW → GROWN → EXPIRED
lifecycle is contained in a single batch).
"""

from __future__ import annotations

import random

import pytest

from repro.core.burst import burst_score
from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor, make_detector
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject

#: Relative tolerance on scores: the two paths apply identical per-object
#: updates, only the maintenance order differs.
SCORE_RTOL = 1e-9

#: Detectors whose reported region must be exactly optimal on every snapshot.
EXACT_NAMES = ("ccs", "bccs", "base", "ag2", "naive", "kccs")


def make_stream(count: int, seed: int, extent: float = 6.0, jump_at: int | None = None):
    """A deterministic stream; ``jump_at`` inserts a > 2|W| time jump."""
    rng = random.Random(seed)
    objects = []
    t = 0.0
    for index in range(count):
        t += rng.uniform(0.1, 0.6)
        if jump_at is not None and index == jump_at:
            t += 100.0  # far larger than both 20 s windows
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, extent),
                y=rng.uniform(0.0, extent),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
            )
        )
    return objects


def scores_equal(a: float, b: float) -> bool:
    return abs(a - b) <= SCORE_RTOL * max(1.0, abs(a), abs(b))


def score_at_point(point, state, query) -> float:
    """Burst score at a bursty point, via closed rectangle-object coverage."""
    a, b = query.rect_width, query.rect_height
    fc = sum(
        o.weight
        for o in state.current
        if o.x <= point.x <= o.x + a and o.y <= point.y <= o.y + b
    )
    fp = sum(
        o.weight
        for o in state.past
        if o.x <= point.x <= o.x + a and o.y <= point.y <= o.y + b
    )
    return burst_score(fc / query.current_length, fp / query.past_length, query.alpha)


def assert_results_equivalent(name, index, per_event, batched, state, query):
    __tracebackhide__ = True
    if per_event is None or batched is None:
        assert per_event is None and batched is None, (
            f"{name} @ object {index}: one path reported a region, the other None "
            f"({per_event} vs {batched})"
        )
        return
    assert scores_equal(per_event.score, batched.score), (
        f"{name} @ object {index}: scores diverged "
        f"({per_event.score!r} vs {batched.score!r})"
    )
    # Same region geometry class: identical width/height.
    for attr in ("width", "height"):
        assert getattr(per_event.region, attr) == pytest.approx(
            getattr(batched.region, attr)
        )
    if name in EXACT_NAMES:
        # Both reported points must achieve the (same) optimal score on the
        # actual window snapshot — different representatives are fine, a
        # suboptimal point is not.
        for label, result in (("per-event", per_event), ("batched", batched)):
            achieved = score_at_point(result.point, state, query)
            assert scores_equal(achieved, result.score), (
                f"{name} @ object {index}: {label} point does not achieve its "
                f"reported score ({achieved!r} vs {result.score!r})"
            )


@pytest.mark.parametrize("name", DETECTOR_NAMES)
@pytest.mark.parametrize("chunk_size", [1, 7, 32])
def test_push_and_push_many_parity(name, chunk_size):
    """push(obj) one at a time vs push_many(chunk) must agree for every detector."""
    # The slow baselines get a shorter stream to keep the suite fast; the
    # window length still forces plenty of GROWN / EXPIRED traffic.
    count = 90 if name in ("naive", "ag2", "base") else 180
    stream = make_stream(count, seed=sum(map(ord, name)))
    query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0, alpha=0.5, k=3)

    per_event = SurgeMonitor(query, algorithm=make_detector(name, query))
    batched = SurgeMonitor(query, algorithm=make_detector(name, query))

    for start in range(0, len(stream), chunk_size):
        chunk = stream[start : start + chunk_size]
        result_a = None
        for obj in chunk:
            result_a = per_event.push(obj)
        result_b = batched.push_many(chunk)
        index = start + len(chunk) - 1

        assert per_event.windows.state().current == batched.windows.state().current
        assert per_event.windows.state().past == batched.windows.state().past
        assert_results_equivalent(
            name, index, result_a, result_b, batched.windows.state(), query
        )

    # Top-k parity (best-first score sequences).
    top_a = per_event.top_k(query.k)
    top_b = batched.top_k(query.k)
    assert len(top_a) == len(top_b)
    for result_a, result_b in zip(top_a, top_b):
        assert scores_equal(result_a.score, result_b.score)


@pytest.mark.parametrize("name", DETECTOR_NAMES)
def test_parity_across_chunk_splitting_an_expiry_run(name):
    """A chunk boundary placed mid-expiry and a full-lifecycle-in-one-chunk jump."""
    count = 80
    # The jump lands inside the third chunk, so that chunk contains objects
    # whose NEW, GROWN and EXPIRED events all occur within the same batch.
    stream = make_stream(count, seed=11, jump_at=41)
    query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0, alpha=0.5, k=3)

    per_event = SurgeMonitor(query, algorithm=make_detector(name, query))
    batched = SurgeMonitor(query, algorithm=make_detector(name, query))

    # Chunk size 16: the jump at index 41 happens mid-chunk (chunk 2 covers
    # 32..47), and expiry runs regularly straddle boundaries.
    for start in range(0, count, 16):
        chunk = stream[start : start + 16]
        result_a = None
        for obj in chunk:
            result_a = per_event.push(obj)
        result_b = batched.push_many(chunk)

        assert len(per_event.windows) == len(batched.windows)
        assert per_event.windows.state().current == batched.windows.state().current
        assert per_event.windows.state().past == batched.windows.state().past
        assert_results_equivalent(
            name, start, result_a, result_b, batched.windows.state(), query
        )


def test_event_kind_multiset_matches_per_object_path():
    """observe_batch emits exactly the per-object events, grouped by kind."""
    from repro.streams.windows import SlidingWindowPair

    stream = make_stream(120, seed=5, jump_at=60)
    for chunk_size in (1, 5, 17, 40):
        sequential = SlidingWindowPair(20.0)
        batched = SlidingWindowPair(20.0)
        for start in range(0, len(stream), chunk_size):
            chunk = stream[start : start + chunk_size]
            expected = []
            for obj in chunk:
                expected.extend(sequential.observe(obj))
            batch = batched.observe_batch(chunk)
            # Same events per kind, in the same relative order.
            for kind_name in ("new", "grown", "expired"):
                want = [
                    e.obj.object_id
                    for e in expected
                    if e.kind.value == kind_name
                ]
                got = [e.obj.object_id for e in getattr(batch, kind_name)]
                assert got == want, (chunk_size, start, kind_name)
            assert len(batch) == len(expected)
            assert batch.arrivals == len(chunk)
            # The grouped views partition the lifecycle-safe event tuple.
            assert sorted(
                (e.kind.value, e.obj.object_id) for e in batch.events
            ) == sorted((e.kind.value, e.obj.object_id) for e in expected)
            assert sequential.state().current == batched.state().current
            assert sequential.state().past == batched.state().past
            assert sequential.time == batched.time
            assert sequential.is_stable() == batched.is_stable()


def test_noop_event_does_not_cancel_dirty_cell_in_batch():
    """A GROWN/EXPIRED for an object the detector never saw is a no-op and
    must not cancel the pending bound refresh of a cell dirtied earlier in
    the same batch (apply_events accepts arbitrary event iterables, e.g.
    from a detector attached mid-stream)."""
    from repro.streams.objects import EventKind, WindowEvent

    query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0, alpha=0.5, k=3)
    seen = SpatialObject(x=0.5, y=0.5, timestamp=0.0, weight=5.0, object_id=1)
    unseen = SpatialObject(x=0.6, y=0.6, timestamp=0.0, weight=3.0, object_id=2)
    events = [
        WindowEvent(kind=EventKind.NEW, obj=seen, time=0.0),
        WindowEvent(kind=EventKind.GROWN, obj=unseen, time=0.0),
        WindowEvent(kind=EventKind.EXPIRED, obj=unseen, time=0.0),
    ]
    # Only the record-keyed detectors define unseen-object transitions as
    # no-ops (the gaps-family count accumulators treat them as real counts,
    # identically on both paths — a separate, pre-existing behaviour).
    for name in EXACT_NAMES:
        per_event = make_detector(name, query)
        batched = make_detector(name, query)
        for event in events:
            per_event.process(event)
        batched.apply_events(list(events))
        reference = per_event.result()
        result = batched.result()
        assert result is not None, f"{name}: batched path lost the only object"
        assert result.score == pytest.approx(reference.score, rel=1e-9), name
