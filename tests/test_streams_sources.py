"""Unit tests for stream sources and stream transformations."""

import pytest

from repro.streams.objects import SpatialObject
from repro.streams.sources import (
    ListSource,
    interleave_sorted,
    iter_chunks,
    merge_streams,
    stretch_to_duration,
    stretch_to_rate,
)


def obj(timestamp, object_id=0):
    return SpatialObject(x=0.0, y=0.0, timestamp=timestamp, object_id=object_id)


class TestListSource:
    def test_sorts_objects_by_timestamp(self):
        source = ListSource([obj(5.0, 1), obj(1.0, 2), obj(3.0, 3)])
        assert [o.timestamp for o in source] == [1.0, 3.0, 5.0]
        assert len(source) == 3
        assert source[0].object_id == 2

    def test_duration_and_rate(self):
        source = ListSource([obj(0.0, 0), obj(1800.0, 1), obj(3600.0, 2)])
        assert source.duration == 3600.0
        assert source.arrival_rate(per=3600.0) == pytest.approx(3.0)

    def test_duration_of_tiny_streams(self):
        assert ListSource([]).duration == 0.0
        assert ListSource([obj(5.0)]).duration == 0.0
        assert ListSource([]).arrival_rate() == 0.0

    def test_objects_property(self):
        source = ListSource([obj(2.0, 1), obj(1.0, 2)])
        assert [o.object_id for o in source.objects] == [2, 1]


class TestMerge:
    def test_merge_streams_sorted_output(self):
        merged = merge_streams([obj(3.0, 1), obj(1.0, 2)], [obj(2.0, 3)])
        assert [o.timestamp for o in merged] == [1.0, 2.0, 3.0]

    def test_merge_empty(self):
        assert merge_streams([], []) == []

    def test_interleave_sorted(self):
        a = [obj(1.0, 1), obj(4.0, 2)]
        b = [obj(2.0, 3), obj(3.0, 4)]
        merged = list(interleave_sorted(a, b))
        assert [o.timestamp for o in merged] == [1.0, 2.0, 3.0, 4.0]


class TestStretching:
    def test_stretch_to_duration_scales_span(self):
        stream = [obj(0.0, 0), obj(10.0, 1), obj(20.0, 2)]
        stretched = stretch_to_duration(stream, 40.0)
        assert stretched[0].timestamp == pytest.approx(0.0)
        assert stretched[-1].timestamp == pytest.approx(40.0)
        assert stretched[1].timestamp == pytest.approx(20.0)

    def test_stretch_preserves_object_identity(self):
        stream = [obj(0.0, 0), obj(10.0, 1)]
        stretched = stretch_to_duration(stream, 5.0)
        assert [o.object_id for o in stretched] == [0, 1]

    def test_stretch_to_duration_simultaneous_arrivals(self):
        stream = [obj(5.0, i) for i in range(3)]
        stretched = stretch_to_duration(stream, 10.0)
        assert stretched[0].timestamp == pytest.approx(5.0)
        assert stretched[-1].timestamp == pytest.approx(15.0)

    def test_stretch_to_duration_invalid(self):
        with pytest.raises(ValueError):
            stretch_to_duration([obj(0.0)], 0.0)

    def test_stretch_empty_stream(self):
        assert stretch_to_duration([], 10.0) == []
        assert stretch_to_rate([], 1000.0) == []

    def test_stretch_to_rate_hits_target_rate(self):
        stream = [obj(float(i) * 100.0, i) for i in range(100)]
        stretched = stretch_to_rate(stream, arrivals_per_day=86_400.0)
        # 100 objects per day at 86400 objects/day means a 100-second span.
        span = stretched[-1].timestamp - stretched[0].timestamp
        assert span == pytest.approx(100.0)

    def test_stretch_to_rate_invalid(self):
        with pytest.raises(ValueError):
            stretch_to_rate([obj(0.0)], 0.0)

    def test_stretching_is_monotone(self):
        stream = [obj(float(i) ** 1.5, i) for i in range(50)]
        stretched = stretch_to_duration(stream, 7.0)
        times = [o.timestamp for o in stretched]
        assert times == sorted(times)


class TestIterChunks:
    def test_splits_lists_with_ragged_tail(self):
        stream = [obj(float(i), i) for i in range(10)]
        chunks = list(iter_chunks(stream, 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [o.object_id for c in chunks for o in c] == list(range(10))

    def test_consumes_lazy_iterables(self):
        chunks = list(iter_chunks((obj(float(i), i) for i in range(5)), 2))
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert all(isinstance(c, list) for c in chunks)

    def test_empty_stream_yields_nothing(self):
        assert list(iter_chunks([], 3)) == []
        assert list(iter_chunks(iter([]), 3)) == []

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks([obj(0.0)], 0))


class TestIterChunksStartOffset:
    """The replay primitive of checkpoint recovery (repro.state).

    The contract: ``iter_chunks(stream, size, start_offset=k)`` yields
    exactly the chunks an uninterrupted ``iter_chunks(stream, size)`` would
    have produced from chunk ``k`` on — same boundaries, same objects, same
    ragged tail — for both sequence and lazy-iterator sources.
    """

    def test_offset_resume_matches_uninterrupted_tail(self):
        stream = [obj(float(i), i) for i in range(23)]
        for chunk_size in (1, 4, 7, 23, 50):
            full = list(iter_chunks(stream, chunk_size))
            for k in range(len(full) + 2):
                resumed = list(iter_chunks(stream, chunk_size, start_offset=k))
                assert resumed == full[k:], (chunk_size, k)

    def test_offset_resume_on_lazy_iterators(self):
        full = list(iter_chunks((obj(float(i), i) for i in range(23)), 4))
        for k in range(len(full) + 2):
            resumed = list(
                iter_chunks((obj(float(i), i) for i in range(23)), 4, start_offset=k)
            )
            assert resumed == full[k:], k

    def test_offset_zero_is_the_default(self):
        stream = [obj(float(i), i) for i in range(9)]
        assert list(iter_chunks(stream, 2, start_offset=0)) == list(
            iter_chunks(stream, 2)
        )

    def test_offset_past_the_end_yields_nothing(self):
        stream = [obj(float(i), i) for i in range(5)]
        assert list(iter_chunks(stream, 2, start_offset=3)) == []
        assert list(iter_chunks(iter(stream), 2, start_offset=3)) == []

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            list(iter_chunks([obj(0.0)], 1, start_offset=-1))
