"""Differential suite for the durable-state subsystem (repro.state).

The contract under test: **kill-and-restore mid-stream is observationally
identical to never having crashed** —

* a :class:`~repro.core.monitor.SurgeMonitor` saved and re-loaded mid-stream
  must finish the stream bit-identically to the original instance, for all
  10 detector names (window deques, cell records, lazy heaps, memoised
  candidates, top-k state and counters all survive the snapshot);
* a :class:`~repro.service.SurgeService` that checkpointed, "crashed" (its
  in-memory state discarded), restored and replayed the lost tail via
  ``run(start_offset=...)`` must produce the same per-chunk updates, final
  results, top-k lists and cumulative :class:`~repro.service.QueryStats`
  object counts as an uninterrupted run — under the ``serial``, ``thread``
  and ``process`` shard executors and under both shard execution plans
  (one query per detector name, so all 10 detectors cross the snapshot
  boundary under every backend).  The uninterrupted reference runs with
  the shared-work plan *disabled*, so every shared-plan crash cycle is
  simultaneously a cross-plan bit-identity proof; dedicated tests also
  restore a shared-plan checkpoint with the plan off (and vice versa),
  because group-owned windows / unit-owned monitors are snapshotted once
  and must clone apart (or re-alias together) on restore;
* the ``repro serve --checkpoint-dir / --resume`` CLI implements exactly
  that protocol end to end, including refusing a resume at a different
  ``--chunk-size`` and refusing to clobber an existing checkpoint.

Restore must also *fail loudly* on broken inputs: unknown manifest schema
versions, missing shard files, snapshots of the wrong kind.
"""

from __future__ import annotations

import json
import logging
import random
from pathlib import Path

import pytest

from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor
from repro.core.query import SurgeQuery
from repro.service import QuerySpec, SurgeService
from repro.state import CheckpointPolicy, SnapshotError, SnapshotSchemaError
from repro.state.recovery import manifest_path, read_manifest, wal_path
from repro.state.wal import ChunkWal
from repro.streams.objects import SpatialObject
from repro.streams.sources import iter_chunks

VOCABULARY = ("concert", "parade", "zika", "festival")
CHUNK_SIZE = 41  # ragged: does not divide the stream length

#: (executor, shards, shared_plan) combinations the kill-and-restore replay
#: runs under.  All of them are compared against the *unshared* serial
#: uninterrupted reference, so the shared rows prove crash recovery and the
#: shared-work execution plan are jointly unobservable.
EXECUTOR_GRID = (
    ("serial", 3, True),
    ("serial", 3, False),
    ("thread", 2, True),
    ("process", 2, True),
)


def make_stream(count: int = 300, seed: int = 61) -> list[SpatialObject]:
    """Keyword-tagged stream with irregular arrivals and one big time jump."""
    rng = random.Random(seed)
    stream = []
    t = 0.0
    for index in range(count):
        t += rng.uniform(0.05, 0.5)
        if index == count // 2:
            t += 150.0  # larger than every query window pair: full lifecycles
        keywords = (rng.choice(VOCABULARY),) if rng.random() < 0.85 else ()
        stream.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": keywords} if keywords else {},
            )
        )
    return stream


def make_specs() -> list[QuerySpec]:
    """One query per detector name, heterogeneous in every dimension."""
    specs = []
    for index, name in enumerate(DETECTOR_NAMES):
        size = (0.8, 1.0, 1.4)[index % 3]
        specs.append(
            QuerySpec(
                query_id=f"{name}-q",
                query=SurgeQuery(
                    rect_width=size,
                    rect_height=size,
                    window_length=(15.0, 20.0, 30.0)[index % 3],
                    alpha=0.5,
                    k=3 if name.startswith("k") else 1,
                ),
                algorithm=name,
                keyword=VOCABULARY[index % len(VOCABULARY)] if index % 3 else None,
                backend="python"
                if name in ("ccs", "bccs", "base", "ag2", "naive", "kccs")
                else None,
            )
        )
    return specs


def result_key(result):
    """Exact identity of a reported result (bitwise, no tolerance)."""
    if result is None:
        return None
    return (
        result.score,
        result.region.as_tuple(),
        result.point.as_tuple(),
        result.fc,
        result.fp,
    )


# ---------------------------------------------------------------------------
# Monitor save / load
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream():
    return make_stream()


class TestMonitorSaveLoad:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_restored_monitor_finishes_bit_identically(self, tmp_path, stream, name):
        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=20.0,
            k=3 if name.startswith("k") else 1,
        )
        backend = (
            "python" if name in ("ccs", "bccs", "base", "ag2", "naive", "kccs") else None
        )
        original = SurgeMonitor(query, algorithm=name, backend=backend)
        original.push_many(stream[:150])
        path = tmp_path / f"{name}.snap"
        header = original.save(path, meta={"chunk_offset": 9})
        assert header["meta"]["algorithm"] == name
        assert header["meta"]["objects_seen"] == 150
        assert header["meta"]["chunk_offset"] == 9

        restored = SurgeMonitor.load(path)
        # The snapshot boundary must be invisible: finish the stream on both.
        for chunk in iter_chunks(stream[150:], 37):
            a = original.push_many(chunk)
            b = restored.push_many(chunk)
            assert result_key(a) == result_key(b)
        assert [result_key(r) for r in original.top_k()] == [
            result_key(r) for r in restored.top_k()
        ]
        assert original.objects_seen == restored.objects_seen
        assert original.window_state() == restored.window_state()
        assert original.is_stable == restored.is_stable

    def test_load_rejects_other_kinds(self, tmp_path):
        from repro.state import write_snapshot

        path = tmp_path / "other.snap"
        write_snapshot(path, "service-shard", {"not": "a monitor"})
        with pytest.raises(SnapshotError, match="not the expected"):
            SurgeMonitor.load(path)

    def test_load_rejects_unknown_schema(self, tmp_path):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0)
        monitor = SurgeMonitor(query, algorithm="gaps")
        path = tmp_path / "monitor.snap"
        monitor.save(path)
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b"snapshot/v1", b"snapshot/v7", 1))
        with pytest.raises(SnapshotSchemaError, match="snapshot/v7"):
            SurgeMonitor.load(path)


# ---------------------------------------------------------------------------
# Service kill-and-restore across executors
# ---------------------------------------------------------------------------
def uninterrupted_run(stream, executor="serial", shards=1):
    """Per-chunk trace + finals of a run that never crashes.

    Runs with the shared-work plan disabled: the per-query baseline every
    crash-and-restore cycle (shared or not) must reproduce bit for bit.
    """
    trace = []
    with SurgeService(
        make_specs(), shards=shards, executor=executor, shared_plan=False
    ) as service:
        for updates in service.run(stream, CHUNK_SIZE):
            trace.append({u.query_id: result_key(u.result) for u in updates})
        finals = {qid: result_key(r) for qid, r in service.results().items()}
        top_k = {
            qid: tuple(result_key(r) for r in results)
            for qid, results in service.top_k().items()
        }
        counts = {
            qid: (stats.objects_routed, stats.chunks_processed)
            for qid, stats in service.stats().per_query.items()
        }
    return trace, finals, top_k, counts


@pytest.fixture(scope="module")
def reference(stream):
    return uninterrupted_run(stream)


@pytest.mark.parametrize(
    "executor,shards,shared_plan",
    EXECUTOR_GRID,
    ids=[
        f"{e}-{s}shard-{'shared' if p else 'unshared'}" for e, s, p in EXECUTOR_GRID
    ],
)
def test_kill_and_restore_equals_uninterrupted(
    tmp_path, stream, reference, executor, shards, shared_plan
):
    """All 10 detectors crossing a crash under every executor and plan."""
    ref_trace, ref_finals, ref_top_k, ref_counts = reference
    checkpoint_dir = tmp_path / "ckpt"

    # The doomed service: checkpoint every 3 chunks, die after chunk 7 (the
    # checkpoint at chunk 6 is durable; chunk 7's effects are lost).
    doomed = SurgeService(
        make_specs(),
        shards=shards,
        executor=executor,
        shared_plan=shared_plan,
        checkpoint_dir=checkpoint_dir,
        checkpoint_policy=CheckpointPolicy(every_chunks=3),
    )
    chunks = iter(iter_chunks(stream, CHUNK_SIZE))
    with doomed:
        for _ in range(7):
            doomed.push_many(next(chunks))
    del doomed  # in-memory state gone: this is the crash

    restored = SurgeService.restore(checkpoint_dir, executor=executor)
    assert restored.n_shards == shards
    assert restored.chunk_offset == 6  # the last every-3-chunks checkpoint
    with restored:
        tail_trace = [
            {u.query_id: result_key(u.result) for u in updates}
            for updates in restored.run(
                stream, CHUNK_SIZE, start_offset=restored.chunk_offset
            )
        ]
        # The replayed tail reproduces the uninterrupted per-chunk updates,
        # including re-living chunk 7, whose first run died with the process.
        assert tail_trace == ref_trace[6:]
        assert {qid: result_key(r) for qid, r in restored.results().items()} == (
            ref_finals
        )
        assert {
            qid: tuple(result_key(r) for r in results)
            for qid, results in restored.top_k().items()
        } == ref_top_k
        assert {
            qid: (stats.objects_routed, stats.chunks_processed)
            for qid, stats in restored.stats().per_query.items()
        } == ref_counts


def test_restore_can_switch_executor(tmp_path, stream, reference):
    """A checkpoint taken under one backend restores under another."""
    _, ref_finals, _, _ = reference
    checkpoint_dir = tmp_path / "ckpt"
    with SurgeService(make_specs(), shards=2, executor="thread") as service:
        for chunk in iter_chunks(stream[: 4 * CHUNK_SIZE], CHUNK_SIZE):
            service.push_many(chunk)
        service.checkpoint(checkpoint_dir)
    restored = SurgeService.restore(checkpoint_dir, executor="serial")
    assert restored.executor_name == "serial"
    with restored:
        for _ in restored.run(stream, CHUNK_SIZE, start_offset=restored.chunk_offset):
            pass
        assert {qid: result_key(r) for qid, r in restored.results().items()} == (
            ref_finals
        )


@pytest.mark.parametrize(
    "checkpoint_plan,restore_plan",
    [(True, False), (False, True)],
    ids=["shared-to-unshared", "unshared-to-shared"],
)
def test_restore_can_switch_execution_plan(
    tmp_path, stream, reference, checkpoint_plan, restore_plan
):
    """A checkpoint taken under one execution plan restores under the other.

    The hard direction is shared→unshared: the snapshot stores each
    group-owned window pair and unit-owned monitor exactly once (pickle
    memoisation preserves the aliasing), and the plan-off restore must
    clone that shared state apart so every pipeline evolves privately —
    and still finish the stream bit-identically.  The reverse direction
    must re-alias provably identical state back together.
    """
    _, ref_finals, ref_top_k, _ = reference
    checkpoint_dir = tmp_path / "ckpt"
    with SurgeService(
        make_specs(), shards=2, shared_plan=checkpoint_plan
    ) as service:
        for chunk in iter_chunks(stream[: 4 * CHUNK_SIZE], CHUNK_SIZE):
            service.push_many(chunk)
        service.checkpoint(checkpoint_dir)
    restored = SurgeService.restore(
        checkpoint_dir, shared_plan=restore_plan, attach=False
    )
    assert restored.shared_plan is restore_plan
    with restored:
        for _ in restored.run(stream, CHUNK_SIZE, start_offset=restored.chunk_offset):
            pass
        assert {qid: result_key(r) for qid, r in restored.results().items()} == (
            ref_finals
        )
        assert {
            qid: tuple(result_key(r) for r in results)
            for qid, results in restored.top_k().items()
        } == ref_top_k


def test_restore_defaults_to_the_recorded_plan(tmp_path, stream):
    """Without an override, restore resumes the plan the manifest records."""
    checkpoint_dir = tmp_path / "ckpt"
    with SurgeService(
        make_specs()[:2], shared_plan=False, checkpoint_dir=checkpoint_dir
    ) as service:
        service.push_many(stream[:50])
        service.checkpoint()
    assert read_manifest(checkpoint_dir).shared_plan is False
    with SurgeService.restore(checkpoint_dir, attach=False) as restored:
        assert restored.shared_plan is False
    with SurgeService.restore(
        checkpoint_dir, attach=False, shared_plan=True
    ) as restored:
        assert restored.shared_plan is True


def test_registry_mutations_survive_restore(tmp_path, stream):
    """add/remove before the checkpoint keep their shard assignment after."""
    specs = make_specs()[:4]
    late = QuerySpec(
        query_id="late",
        query=SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0),
        algorithm="ccs",
        keyword="concert",
        backend="python",
    )
    checkpoint_dir = tmp_path / "ckpt"

    def play(service, mutate):
        it = iter_chunks(stream, CHUNK_SIZE)
        with service:
            for _ in range(3):
                service.push_many(next(it))
            mutate(service)
            for chunk in it:
                service.push_many(chunk)
            return {qid: result_key(r) for qid, r in service.results().items()}

    def mutate(service):
        service.remove_query(specs[1].query_id)
        service.add_query(late)

    expected = play(SurgeService(specs, shards=3), mutate)

    def mutate_then_checkpoint(service):
        mutate(service)
        service.checkpoint()

    doomed = SurgeService(
        specs, shards=3, checkpoint_dir=checkpoint_dir
    )
    it = iter_chunks(stream, CHUNK_SIZE)
    with doomed:
        for _ in range(3):
            doomed.push_many(next(it))
        mutate_then_checkpoint(doomed)
    restored = SurgeService.restore(checkpoint_dir)
    with restored:
        for chunk in iter_chunks(stream, CHUNK_SIZE, start_offset=3):
            restored.push_many(chunk)
        got = {qid: result_key(r) for qid, r in restored.results().items()}
    assert got == expected


# ---------------------------------------------------------------------------
# Failure modes and plumbing
# ---------------------------------------------------------------------------
class TestRestoreValidation:
    def test_restore_without_checkpoint(self, tmp_path):
        with pytest.raises(SnapshotError, match="no service checkpoint"):
            SurgeService.restore(tmp_path)

    def test_unknown_manifest_schema(self, tmp_path, stream):
        with SurgeService(make_specs()[:2], checkpoint_dir=tmp_path) as service:
            service.push_many(stream[:50])
            service.checkpoint()
        path = manifest_path(tmp_path)
        record = json.loads(path.read_text())
        record["schema"] = "service-manifest/v42"
        path.write_text(json.dumps(record))
        with pytest.raises(SnapshotSchemaError) as excinfo:
            SurgeService.restore(tmp_path)
        assert "service-manifest/v42" in str(excinfo.value)
        assert "service-manifest/v1" in str(excinfo.value)

    def test_missing_shard_file(self, tmp_path, stream):
        with SurgeService(make_specs()[:2], shards=2, checkpoint_dir=tmp_path) as s:
            s.push_many(stream[:50])
            s.checkpoint()
        victim = next(tmp_path.glob("shard-01*.ckpt"))
        victim.unlink()
        with pytest.raises(SnapshotError, match="missing shard snapshot"):
            SurgeService.restore(tmp_path)

    def test_checkpoint_without_directory(self, stream):
        with SurgeService(make_specs()[:1]) as service:
            service.push_many(stream[:50])
            with pytest.raises(ValueError, match="no checkpoint directory"):
                service.checkpoint()

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_scatter_requires_one_message_per_shard(self, executor):
        from repro.service.shards import make_executor

        backend = make_executor(executor, [[], []])
        try:
            with pytest.raises(ValueError, match="one message per shard"):
                backend.scatter([("results",)])
        finally:
            backend.close()


class TestDurabilityPlumbing:
    def test_wal_records_every_chunk_and_checkpoint(self, tmp_path, stream):
        with SurgeService(
            make_specs()[:2],
            checkpoint_dir=tmp_path,
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        ) as service:
            for _ in service.run(stream[: 5 * CHUNK_SIZE], CHUNK_SIZE):
                pass
        state = ChunkWal.read(wal_path(tmp_path))
        # 5 chunks, checkpoints after chunks 2 and 4: the WAL holds the
        # generation-2 checkpoint plus the single chunk after it.
        assert state.checkpoint is not None
        assert state.checkpoint.chunk_offset == 4
        assert state.checkpoint.generation == 2
        assert state.lost_chunks == 1
        assert state.next_chunk_offset == 5
        manifest = read_manifest(tmp_path)
        assert manifest.chunk_offset == 4
        # Pruning keeps the last two generations so a torn newest
        # checkpoint can fall back to MANIFEST.prev.json on restore.
        assert sorted(p.name for p in tmp_path.glob("shard-*.ckpt")) == [
            "shard-00.g000001.ckpt",
            "shard-00.g000002.ckpt",
        ]

    def test_prune_generations_returns_the_failed_delete_count(
        self, tmp_path, monkeypatch
    ):
        import repro.state.recovery as recovery_module

        monkeypatch.setattr(recovery_module, "_prune_warned", True)  # quiet
        for generation in (1, 2, 3):
            (tmp_path / f"shard-00.g{generation:06d}.ckpt").write_bytes(b"x")

        def refusing_unlink(self, *args, **kwargs):
            raise PermissionError(f"unlink refused: {self}")

        monkeypatch.setattr(Path, "unlink", refusing_unlink)
        # keep {g3, g2}: only the g1 file is stale, and its delete fails.
        assert recovery_module.prune_generations(tmp_path, 3) == 1

    def test_prune_failures_are_counted_and_warned_once(
        self, tmp_path, stream, monkeypatch, caplog
    ):
        """Satellite: failed prune deletes reach stats; the log warns once.

        A read-only or shared checkpoint directory must not crash the
        checkpoint (the manifest never names stale files) — but it must
        not be silent either, or the directory grows until the disk fills.
        """
        import repro.state.recovery as recovery_module

        monkeypatch.setattr(recovery_module, "_prune_warned", False)
        real_unlink = Path.unlink

        def refusing_unlink(self, *args, **kwargs):
            if self.suffix == ".ckpt":
                raise PermissionError(f"unlink refused: {self}")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", refusing_unlink)
        with caplog.at_level(logging.WARNING, logger="repro.state.recovery"):
            with SurgeService(
                make_specs()[:1],
                checkpoint_dir=tmp_path,
                checkpoint_policy=CheckpointPolicy(every_chunks=2),
            ) as service:
                for _ in service.run(stream[: 8 * CHUNK_SIZE], CHUNK_SIZE):
                    pass
                # Generations 1..4: the g3 checkpoint fails to delete g1,
                # the g4 checkpoint fails to delete g1 and g2.
                assert service.checkpoint_prune_errors == 3
        events = [
            getattr(record, "event", None)
            for record in caplog.records
            if record.name == "repro.state.recovery"
        ]
        assert events.count("checkpoint_prune_errors") == 1
        # Nothing was deleted: every generation's snapshot is still on disk.
        assert len(list(tmp_path.glob("shard-00.*.ckpt"))) == 4

    def test_fresh_attach_refuses_an_existing_checkpoint(self, tmp_path, stream):
        """Constructing over someone else's checkpoint must not clobber it."""
        with SurgeService(make_specs()[:1], checkpoint_dir=tmp_path) as service:
            service.push_many(stream[:50])
            service.checkpoint()
        with pytest.raises(ValueError, match="restore"):
            SurgeService(make_specs()[:1], checkpoint_dir=tmp_path)
        # The original checkpoint is untouched and still restores.
        with SurgeService.restore(tmp_path, attach=False) as restored:
            assert restored.chunk_offset == 1

    def test_restore_resets_the_stale_wal(self, tmp_path, stream):
        """Replayed chunks must not be double-counted by the crash-era log."""
        doomed = SurgeService(
            make_specs()[:2],
            checkpoint_dir=tmp_path,
            checkpoint_policy=CheckpointPolicy(every_chunks=3),
        )
        chunks = iter(iter_chunks(stream, CHUNK_SIZE))
        with doomed:
            for _ in range(5):  # checkpoint at 3; chunks 3 and 4 die with us
                doomed.push_many(next(chunks))
        assert ChunkWal.read(wal_path(tmp_path)).lost_chunks == 2
        restored = SurgeService.restore(tmp_path)
        with restored:
            for chunk in iter_chunks(stream, CHUNK_SIZE, start_offset=3):
                restored.push_many(chunk)
        state = ChunkWal.read(wal_path(tmp_path))
        offsets = [record["chunk"] for record in state.chunks_after_checkpoint]
        # Exactly-once ledger: every offset after the last checkpoint appears
        # once — the crash-era records for chunks 3 and 4 were reset away.
        assert offsets == sorted(set(offsets))
        assert state.next_chunk_offset == restored.chunk_offset

    def test_empty_chunks_do_not_advance_the_replay_offset(self, tmp_path, stream):
        with SurgeService(make_specs()[:1], checkpoint_dir=tmp_path) as service:
            service.push_many(stream[:30])
            service.push_many([])  # a no-op for every monitor
            service.push_many(stream[30:60])
            assert service.chunk_offset == 2  # only the real chunks count
        state = ChunkWal.read(wal_path(tmp_path))
        assert [record["chunk"] for record in state.chunks_after_checkpoint] == [0, 1]

    def test_registry_changes_are_immediately_durable(self, tmp_path, stream):
        """A crash right after add/remove must not lose the registry change."""
        late = QuerySpec(
            query_id="late",
            query=SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0),
            algorithm="ccs",
            keyword="concert",
            backend="python",
        )
        doomed = SurgeService(make_specs()[:2], shards=2, checkpoint_dir=tmp_path)
        with doomed:
            doomed.push_many(stream[:50])
            doomed.add_query(late)
            removed = make_specs()[0].query_id
            doomed.remove_query(removed)
            # Crash immediately: no explicit checkpoint after the mutations.
        restored = SurgeService.restore(tmp_path, attach=False)
        with restored:
            assert "late" in restored.query_ids
            assert removed not in restored.query_ids

    def test_stream_time_policy_triggers(self, tmp_path, stream):
        # Arrivals are ~0.3s apart with a 150s jump mid-stream; a 40s policy
        # must checkpoint at least at the jump.
        with SurgeService(
            make_specs()[:2],
            checkpoint_dir=tmp_path,
            checkpoint_policy=CheckpointPolicy(every_stream_seconds=40.0),
        ) as service:
            for _ in service.run(stream, CHUNK_SIZE):
                pass
        assert read_manifest(tmp_path).generation >= 2

    def test_resume_after_completion_is_a_noop(self, tmp_path, stream):
        with SurgeService(make_specs()[:3], checkpoint_dir=tmp_path) as service:
            for _ in service.run(stream, CHUNK_SIZE):
                pass
            service.checkpoint()
            finals = {qid: result_key(r) for qid, r in service.results().items()}
        restored = SurgeService.restore(tmp_path)
        with restored:
            replayed = list(
                restored.run(stream, CHUNK_SIZE, start_offset=restored.chunk_offset)
            )
            assert replayed == []
            assert {
                qid: result_key(r) for qid, r in restored.results().items()
            } == finals

    def test_manual_checkpoint_to_explicit_directory(self, tmp_path, stream):
        target = tmp_path / "one-off"
        with SurgeService(make_specs()[:2]) as service:
            service.push_many(stream[:100])
            path = service.checkpoint(target)
            assert path == manifest_path(target)
            # One-off checkpoints do not attach the directory.
            assert service.checkpoint_dir is None
        restored = SurgeService.restore(target, attach=False)
        with restored:
            assert restored.chunk_offset == 1


class TestMeasureRecovery:
    """The staged-crash harness behind ``benchmarks/bench_recovery.py``."""

    def test_times_both_paths_and_asserts_parity(self, tmp_path, stream):
        from repro.evaluation.runner import measure_recovery

        outcome = measure_recovery(
            make_specs()[:3],
            stream,
            tmp_path / "crash",
            chunk_size=CHUNK_SIZE,
            checkpoint_every=2,
            crash_fraction=0.75,
        )
        assert outcome.chunks_total == -(-len(stream) // CHUNK_SIZE)
        assert 0 < outcome.crash_chunk_offset < outcome.chunks_total
        assert 0 < outcome.checkpoint_chunk_offset <= outcome.crash_chunk_offset
        assert outcome.checkpoints_written >= 1
        assert outcome.full_replay_seconds > 0.0
        assert outcome.restore_seconds > 0.0
        assert outcome.resume_seconds == (
            outcome.restore_seconds + outcome.tail_replay_seconds
        )
        assert outcome.speedup_vs_full_replay > 0.0

    def test_refuses_a_crash_before_any_checkpoint(self, tmp_path, stream):
        from repro.evaluation.runner import measure_recovery

        with pytest.raises(ValueError, match="no checkpoint was taken"):
            measure_recovery(
                make_specs()[:1],
                stream,
                tmp_path / "crash",
                chunk_size=CHUNK_SIZE,
                checkpoint_every=10_000,
            )

    def test_refuses_a_stream_too_short_to_crash(self, tmp_path, stream):
        from repro.evaluation.runner import measure_recovery

        with pytest.raises(ValueError, match="too short"):
            measure_recovery(
                make_specs()[:1],
                stream[:10],
                tmp_path / "crash",
                chunk_size=1_000,
            )


# ---------------------------------------------------------------------------
# CLI: repro serve --checkpoint-dir / --resume
# ---------------------------------------------------------------------------
class TestCliResume:
    @pytest.fixture()
    def cli_env(self, tmp_path, stream):
        from repro.cli import main
        from repro.datasets.io import write_csv_stream

        cut = 5 * CHUNK_SIZE  # a chunk boundary, so prefix chunks line up
        full = tmp_path / "stream.csv"
        partial = tmp_path / "partial.csv"
        write_csv_stream(full, stream)
        write_csv_stream(partial, stream[:cut])
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps(
                [
                    {"id": "concerts", "keyword": "concert", "rect": [1.0, 1.0],
                     "window": 20, "backend": "python"},
                    {"id": "all", "rect": [1.2, 1.2], "window": 15,
                     "algorithm": "gaps"},
                ]
            )
        )
        return main, tmp_path, full, partial, queries

    @staticmethod
    def serve(main, stream_file, *extra):
        return main(
            ["serve", str(stream_file), "--chunk-size", str(CHUNK_SIZE), *extra]
        )

    @staticmethod
    def finals(capsys):
        out = capsys.readouterr().out.splitlines()
        return out[out.index("final results:") :]

    def test_crash_and_resume_matches_uninterrupted(self, cli_env, capsys):
        main, tmp_path, full, partial, queries = cli_env
        ckpt = tmp_path / "ckpt"

        assert self.serve(main, full, "--queries", str(queries)) == 0
        expected = self.finals(capsys)

        # The "crash": the victim only ever saw the stream prefix (cut at a
        # chunk boundary), checkpointing as it went.
        assert (
            self.serve(
                main,
                partial,
                "--queries",
                str(queries),
                "--checkpoint-dir",
                str(ckpt),
                "--checkpoint-every",
                "2",
            )
            == 0
        )
        capsys.readouterr()
        # Resume over the full stream replays only the unseen chunks.
        assert self.serve(main, full, "--resume", "--checkpoint-dir", str(ckpt)) == 0
        assert self.finals(capsys) == expected

    def test_resume_defaults_to_the_recorded_executor(self, cli_env, capsys):
        """--resume without --executor must not downgrade the backend."""
        main, tmp_path, full, partial, queries = cli_env
        ckpt = tmp_path / "ckpt"
        assert (
            self.serve(
                main, partial, "--queries", str(queries),
                "--executor", "thread", "--shards", "2",
                "--checkpoint-dir", str(ckpt),
            )
            == 0
        )
        capsys.readouterr()
        assert self.serve(main, full, "--resume", "--checkpoint-dir", str(ckpt)) == 0
        err = capsys.readouterr().err
        assert "executor=thread" in err
        assert "shards=2" in err

    def test_resume_requires_checkpoint_dir(self, cli_env, capsys):
        main, _, full, _, _ = cli_env
        assert self.serve(main, full, "--resume") == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_refuses_other_chunk_size(self, cli_env, capsys):
        main, tmp_path, full, partial, queries = cli_env
        ckpt = tmp_path / "ckpt"
        assert (
            self.serve(
                main, partial, "--queries", str(queries),
                "--checkpoint-dir", str(ckpt),
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["serve", str(full), "--chunk-size", str(CHUNK_SIZE + 1),
             "--resume", "--checkpoint-dir", str(ckpt)]
        )
        assert code == 2
        assert "chunk-size" in capsys.readouterr().err

    def test_fresh_start_refuses_existing_checkpoint(self, cli_env, capsys):
        main, tmp_path, full, partial, queries = cli_env
        ckpt = tmp_path / "ckpt"
        assert (
            self.serve(
                main, partial, "--queries", str(queries),
                "--checkpoint-dir", str(ckpt),
            )
            == 0
        )
        capsys.readouterr()
        assert (
            self.serve(
                main, full, "--queries", str(queries), "--checkpoint-dir", str(ckpt)
            )
            == 2
        )
        assert "--resume" in capsys.readouterr().err

    def test_seconds_only_policy_keeps_the_chunk_default(self, tmp_path):
        """--checkpoint-every-seconds adds a trigger, it does not drop one."""
        from repro.cli import _build_parser, _build_serve_service
        from repro.service.service import DEFAULT_CHECKPOINT_EVERY_CHUNKS

        args = _build_parser().parse_args(
            ["serve", "ignored.csv", "--queries", "also-ignored.json",
             "--checkpoint-dir", str(tmp_path / "d"),
             "--checkpoint-every-seconds", "3600"]
        )
        # Build only the policy path: the queries file does not exist, so
        # stop at the load error after the policy was already constructed.
        with pytest.raises(ValueError, match="failed to load"):
            _build_serve_service(args)
        from repro.state import CheckpointPolicy

        policy = CheckpointPolicy(
            every_chunks=DEFAULT_CHECKPOINT_EVERY_CHUNKS,
            every_stream_seconds=3600.0,
        )
        # Re-parse with an existing queries file to observe the policy.
        queries = tmp_path / "q.json"
        queries.write_text(
            json.dumps([{"id": "q", "rect": [1.0, 1.0], "window": 20}])
        )
        args = _build_parser().parse_args(
            ["serve", "ignored.csv", "--queries", str(queries),
             "--checkpoint-dir", str(tmp_path / "d"),
             "--checkpoint-every-seconds", "3600"]
        )
        service, offset = _build_serve_service(args)
        with service:
            assert offset == 0
            assert service.checkpoint_policy == policy

    def test_checkpoint_flags_require_directory(self, cli_env, capsys):
        main, _, full, _, queries = cli_env
        assert (
            self.serve(
                main, full, "--queries", str(queries), "--checkpoint-every", "4"
            )
            == 2
        )
        assert "--checkpoint-dir" in capsys.readouterr().err
