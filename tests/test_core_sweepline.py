"""Unit tests for SL-CSPOT, the sweep-line bursty-point search (Algorithm 1)."""

import pytest

from repro.core.sweepline import LabeledRect, SweepResult, sweep_bursty_point
from repro.geometry.primitives import Point, Rect


def current(min_x, min_y, max_x, max_y, weight=1.0):
    return LabeledRect(min_x, min_y, max_x, max_y, weight, True)


def past(min_x, min_y, max_x, max_y, weight=1.0):
    return LabeledRect(min_x, min_y, max_x, max_y, weight, False)


class TestSingleRectangles:
    def test_empty_input(self):
        assert sweep_bursty_point([], 0.5, 1.0, 1.0) is None

    def test_single_current_rectangle(self):
        result = sweep_bursty_point([current(0, 0, 1, 1, 2.0)], 0.5, 1.0, 1.0)
        assert result is not None
        assert result.score == pytest.approx(2.0)
        assert result.fc == pytest.approx(2.0)
        assert Rect(0, 0, 1, 1).contains_point(result.point)

    def test_single_past_rectangle_scores_zero(self):
        result = sweep_bursty_point([past(0, 0, 1, 1, 5.0)], 0.5, 1.0, 1.0)
        assert result is not None
        assert result.score == pytest.approx(0.0)

    def test_window_lengths_normalise_weights(self):
        result = sweep_bursty_point([current(0, 0, 1, 1, 6.0)], 0.5, 3.0, 3.0)
        assert result.score == pytest.approx(2.0)


class TestOverlapStructure:
    def test_two_overlapping_current_rectangles(self):
        rects = [current(0, 0, 2, 2, 1.0), current(1, 1, 3, 3, 1.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(2.0)
        assert Rect(1, 1, 2, 2).contains_point(result.point)

    def test_disjoint_rectangles_pick_the_heavier(self):
        rects = [current(0, 0, 1, 1, 1.0), current(5, 5, 6, 6, 3.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(3.0)
        assert Rect(5, 5, 6, 6).contains_point(result.point)

    def test_past_rectangle_lowers_score_in_overlap(self):
        # With alpha close to 1 the optimum avoids the past rectangle.
        rects = [current(0, 0, 2, 2, 1.0), past(1, 0, 3, 2, 1.0)]
        result = sweep_bursty_point(rects, 0.9, 1.0, 1.0)
        assert result.score == pytest.approx(1.0)
        assert result.point.x < 1.0  # strictly outside the past rectangle

    def test_optimum_on_shared_edge_of_current_rectangles(self):
        # Two current rectangles touching at x = 1: only the shared edge is
        # covered by both, so the exact optimum lies exactly on the edge.
        rects = [current(0, 0, 1, 1, 1.0), current(1, 0, 2, 1, 1.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(2.0)
        assert result.point.x == pytest.approx(1.0)

    def test_paper_figure3_example(self):
        # Figure 3 of the paper: g1 (w=3) in Wp, g2 (w=1) and g3 (w=2) in Wc,
        # |Wc| = |Wp| = 1, alpha = 0.5.  The bursty point lies where g2 and g3
        # overlap but g1 does not reach, with burst score 3.
        g1 = past(1.0, 0.0, 4.0, 2.0, 3.0)
        g2 = current(2.0, 1.0, 5.0, 3.0, 1.0)
        g3 = current(2.5, 1.5, 5.5, 3.5, 2.0)
        result = sweep_bursty_point([g1, g2, g3], 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(3.0)
        assert result.fc == pytest.approx(3.0)
        assert result.fp == pytest.approx(0.0)
        assert result.point.y > 2.0  # above g1

    def test_fully_covered_by_current_and_past(self):
        rects = [current(0, 0, 2, 2, 4.0), past(0, 0, 2, 2, 4.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        # fc = fp = 4 everywhere inside: S = 0.5*0 + 0.5*4 = 2.
        assert result.score == pytest.approx(2.0)
        assert result.fc == pytest.approx(4.0)
        assert result.fp == pytest.approx(4.0)


class TestBounds:
    def test_bounds_restrict_the_search(self):
        rects = [current(0, 0, 1, 1, 5.0), current(10, 10, 11, 11, 1.0)]
        bounded = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(9, 9, 12, 12))
        assert bounded.score == pytest.approx(1.0)
        assert Rect(10, 10, 11, 11).contains_point(bounded.point)

    def test_bounds_with_no_intersection(self):
        rects = [current(0, 0, 1, 1, 5.0)]
        assert sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(5, 5, 6, 6)) is None

    def test_point_always_inside_bounds(self):
        rects = [current(0, 0, 10, 10, 1.0), current(2, 2, 12, 12, 2.0)]
        bounds = Rect(3.0, 3.0, 4.0, 4.0)
        result = sweep_bursty_point(rects, 0.3, 1.0, 1.0, bounds=bounds)
        assert bounds.contains_point(result.point)
        assert result.score == pytest.approx(3.0)

    def test_rectangles_swept_counts_clipped_rectangles(self):
        rects = [current(0, 0, 1, 1), current(5, 5, 6, 6)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(0, 0, 2, 2))
        assert result.rectangles_swept == 1


class TestResultType:
    def test_result_is_sweepresult(self):
        result = sweep_bursty_point([current(0, 0, 1, 1)], 0.5, 1.0, 1.0)
        assert isinstance(result, SweepResult)
        assert isinstance(result.point, Point)

    def test_labeled_rect_from_rect(self):
        labeled = LabeledRect.from_rect(Rect(0, 1, 2, 3), weight=4.0, in_current=False)
        assert labeled.min_y == 1
        assert labeled.max_x == 2
        assert labeled.weight == 4.0
        assert labeled.in_current is False
