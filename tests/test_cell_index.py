"""Unit tests for the uniform-grid bucket index used on the event path."""

from __future__ import annotations

import random

import pytest

from repro.core.cell_index import UniformGridIndex
from repro.geometry.grids import GridSpec
from repro.geometry.primitives import Rect


@pytest.fixture
def grid() -> GridSpec:
    return GridSpec(cell_width=1.0, cell_height=0.5, origin_x=-0.25, origin_y=0.125)


class TestAddressingParityWithGridSpec:
    def test_cell_of_matches_gridspec_on_random_points(self, grid):
        index = UniformGridIndex(grid)
        rng = random.Random(42)
        for _ in range(500):
            x = rng.uniform(-20.0, 20.0)
            y = rng.uniform(-20.0, 20.0)
            assert index.cell_of(x, y) == grid.cell_of(x, y)

    def test_cells_overlapping_matches_gridspec_on_random_rects(self, grid):
        index = UniformGridIndex(grid)
        rng = random.Random(7)
        for _ in range(500):
            x = rng.uniform(-10.0, 10.0)
            y = rng.uniform(-10.0, 10.0)
            w = rng.uniform(0.0, 3.0)
            h = rng.uniform(0.0, 3.0)
            rect = Rect(x, y, x + w, y + h)
            assert index.cells_overlapping(x, y, x + w, y + h) == list(
                grid.cells_overlapping(rect)
            )

    def test_cells_overlapping_matches_gridspec_on_aligned_rects(self, grid):
        """Edge-aligned rectangles hit the up-to-nine-cell closed case."""
        index = UniformGridIndex(grid)
        for ix in (-2, 0, 3):
            for iy in (-1, 0, 2):
                rect = grid.cell_rect((ix, iy))
                assert index.cells_overlapping_rect(rect) == list(
                    grid.cells_overlapping(rect)
                )

    def test_cell_rect_delegates_to_grid(self, grid):
        index = UniformGridIndex(grid)
        assert index.cell_rect((3, -2)) == grid.cell_rect((3, -2))


class TestFastPaths:
    def test_single_cell(self, grid):
        index = UniformGridIndex(grid)
        assert index.cells_overlapping(0.1, 0.2, 0.2, 0.3) == [(0, 0)]

    def test_two_cells_vertical_and_horizontal(self, grid):
        index = UniformGridIndex(grid)
        # Crosses one horizontal grid line only.
        tall = index.cells_overlapping(0.1, 0.5, 0.2, 0.8)
        assert tall == [(0, 0), (0, 1)]
        # Crosses one vertical grid line only.
        wide = index.cells_overlapping(0.5, 0.2, 0.9, 0.3)
        assert wide == [(0, 0), (1, 0)]

    def test_four_cells_general_position(self, grid):
        index = UniformGridIndex(grid)
        cells = index.cells_overlapping(0.5, 0.5, 0.9, 0.8)
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_cell_sized_rect_in_general_position_touches_four_cells(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        index = UniformGridIndex(grid)
        cells = index.cells_overlapping(0.3, 0.7, 1.3, 1.7)
        assert len(cells) == 4

    def test_large_rect_falls_back_to_full_enumeration(self, grid):
        index = UniformGridIndex(grid)
        cells = index.cells_overlapping(0.0, 0.2, 3.0, 1.4)
        rect = Rect(0.0, 0.2, 3.0, 1.4)
        assert cells == list(grid.cells_overlapping(rect))
        assert len(cells) > 4
