"""Unit tests for the SURGE query object."""

import pytest

from repro.core.query import SurgeQuery
from repro.geometry.primitives import Rect


class TestValidation:
    def test_valid_query(self):
        query = SurgeQuery(rect_width=1.0, rect_height=2.0, window_length=60.0)
        assert query.current_length == 60.0
        assert query.past_length == 60.0
        assert query.k == 1

    def test_invalid_rect_size(self):
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=0.0, rect_height=1.0, window_length=60.0)
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=1.0, rect_height=-1.0, window_length=60.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=0.0)
        with pytest.raises(ValueError):
            SurgeQuery(
                rect_width=1.0, rect_height=1.0, window_length=60.0, past_window_length=0.0
            )

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0, alpha=1.0)
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0, alpha=-0.2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0, k=0)


class TestDerivedQuantities:
    def test_distinct_past_window_length(self):
        query = SurgeQuery(
            rect_width=1.0, rect_height=1.0, window_length=60.0, past_window_length=120.0
        )
        assert query.current_length == 60.0
        assert query.past_length == 120.0

    def test_accepts_everything_without_area(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0)
        assert query.accepts(1e9, -1e9)

    def test_accepts_respects_area(self):
        area = Rect(0.0, 0.0, 10.0, 10.0)
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0, area=area)
        assert query.accepts(5.0, 5.0)
        assert query.accepts(0.0, 10.0)
        assert not query.accepts(10.5, 5.0)

    def test_base_grid_cell_size_matches_query(self):
        query = SurgeQuery(rect_width=2.0, rect_height=3.0, window_length=60.0)
        grid = query.base_grid()
        assert grid.cell_width == 2.0
        assert grid.cell_height == 3.0
        assert grid.origin_x == 0.0

    def test_base_grid_anchored_at_area(self):
        area = Rect(-5.0, 7.0, 5.0, 17.0)
        query = SurgeQuery(
            rect_width=1.0, rect_height=1.0, window_length=60.0, area=area
        )
        grid = query.base_grid()
        assert grid.origin_x == -5.0
        assert grid.origin_y == 7.0

    def test_with_replaces_fields(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0, alpha=0.5)
        changed = query.with_(alpha=0.9, k=5)
        assert changed.alpha == 0.9
        assert changed.k == 5
        assert changed.rect_width == 1.0
        # The original is untouched (queries are immutable).
        assert query.alpha == 0.5

    def test_with_validates_changes(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0)
        with pytest.raises(ValueError):
            query.with_(alpha=2.0)
