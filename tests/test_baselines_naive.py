"""Unit tests for the naive full-sweep baseline."""

import pytest

from tests.helpers import feed, feed_many, make_objects, scores_close
from repro.baselines.naive import NaiveSweepDetector
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestNaiveDetector:
    def test_no_objects_no_result(self, small_query):
        assert NaiveSweepDetector(small_query).result() is None

    def test_single_object(self, small_query):
        detector = NaiveSweepDetector(small_query)
        feed(detector, [obj(1.0, 1.0, 0.0, 4.0)], small_query.window_length)
        assert detector.result().score == pytest.approx(0.2)

    def test_every_event_triggers_a_sweep(self, small_query):
        detector = NaiveSweepDetector(small_query)
        feed(detector, make_objects(20, seed=1), small_query.window_length)
        assert detector.stats.sweepline_calls == detector.stats.events_processed
        assert detector.stats.events_triggering_search == detector.stats.events_processed

    def test_area_filter(self):
        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=10.0,
            area=Rect(0.0, 0.0, 2.0, 2.0),
        )
        detector = NaiveSweepDetector(query)
        feed(detector, [obj(1.0, 1.0, 0.0, 1.0, 0), obj(8.0, 8.0, 1.0, 9.0, 1)], 10.0)
        assert detector.result().score == pytest.approx(0.1)

    def test_objects_expire(self, small_query):
        detector = NaiveSweepDetector(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(1.0, 1.0, 0.0)):
            detector.process(event)
        for event in windows.advance_time(500.0):
            detector.process(event)
        assert detector.result() is None

    def test_grown_objects_keep_geometry_but_change_window(self, small_query):
        detector = NaiveSweepDetector(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(1.0, 1.0, 0.0, 4.0)):
            detector.process(event)
        for event in windows.advance_time(25.0):
            detector.process(event)
        # Object now only in the past window: burst score is 0 everywhere.
        assert detector.result().score == pytest.approx(0.0)

    def test_agrees_with_cell_cspot(self, small_query):
        naive = NaiveSweepDetector(small_query)
        ccs = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in make_objects(50, seed=7, extent=5.0):
            for event in windows.observe(spatial):
                naive.process(event)
                ccs.process(event)
            assert scores_close(naive.current_score(), ccs.current_score())
