"""Unit tests for the brute-force ground-truth algorithms."""

import pytest

from repro.core.brute import (
    best_region_brute_force,
    greedy_top_k_brute_force,
    score_of_region,
)
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject


def obj(x, y, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=0.0, weight=weight, object_id=object_id)


@pytest.fixture
def unit_query():
    return SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=1.0, alpha=0.5)


class TestScoreOfRegion:
    def test_counts_objects_inside_each_window(self, unit_query):
        region = Rect(0.0, 0.0, 1.0, 1.0)
        current = [obj(0.5, 0.5, 2.0), obj(5.0, 5.0, 9.0)]
        past = [obj(0.9, 0.9, 1.0)]
        score, fc, fp = score_of_region(region, current, past, unit_query)
        assert fc == pytest.approx(2.0)
        assert fp == pytest.approx(1.0)
        assert score == pytest.approx(0.5 * 1.0 + 0.5 * 2.0)

    def test_normalises_by_window_lengths(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=4.0, alpha=0.0)
        region = Rect(0.0, 0.0, 1.0, 1.0)
        score, fc, fp = score_of_region(region, [obj(0.5, 0.5, 8.0)], [], query)
        assert fc == pytest.approx(2.0)
        assert score == pytest.approx(2.0)

    def test_closed_region_boundaries(self, unit_query):
        region = Rect(0.0, 0.0, 1.0, 1.0)
        score, fc, _ = score_of_region(region, [obj(1.0, 1.0, 3.0)], [], unit_query)
        assert fc == pytest.approx(3.0)


class TestBestRegion:
    def test_empty_snapshot(self, unit_query):
        assert best_region_brute_force([], [], unit_query) is None

    def test_single_object(self, unit_query):
        best = best_region_brute_force([obj(2.0, 3.0, 4.0)], [], unit_query)
        assert best.score == pytest.approx(4.0)
        assert best.region.contains_xy(2.0, 3.0)

    def test_cluster_beats_isolated_heavy_object(self, unit_query):
        current = [obj(0.0, 0.0, 2.0), obj(0.2, 0.2, 2.0), obj(0.4, 0.4, 2.0), obj(9.0, 9.0, 5.0)]
        best = best_region_brute_force(current, [], unit_query)
        assert best.score == pytest.approx(6.0)
        for point in [(0.0, 0.0), (0.2, 0.2), (0.4, 0.4)]:
            assert best.region.contains_xy(*point)

    def test_past_object_at_same_location_reduces_the_score(self, unit_query):
        current = [obj(0.0, 0.0, 2.0)]
        past = [obj(0.0, 0.0, 2.0)]
        best = best_region_brute_force(current, past, unit_query)
        # Every region containing the current object also contains the past
        # one (identical location), so S = 0.5*0 + 0.5*2 = 1.
        assert best.score == pytest.approx(1.0)

    def test_nearby_past_object_can_be_excluded_by_placement(self, unit_query):
        current = [obj(0.0, 0.0, 2.0)]
        past = [obj(0.1, 0.1, 2.0)]
        best = best_region_brute_force(current, past, unit_query)
        # A region whose top-right corner is just below (0.1, 0.1) contains
        # the current object but not the past one, so the full score survives.
        assert best.score == pytest.approx(2.0)
        assert best.region.contains_xy(0.0, 0.0)
        assert not best.region.contains_xy(0.1, 0.1)

    def test_region_has_requested_size(self):
        query = SurgeQuery(rect_width=2.0, rect_height=0.5, window_length=1.0)
        best = best_region_brute_force([obj(1.0, 1.0)], [], query)
        assert best.region.width == pytest.approx(2.0)
        assert best.region.height == pytest.approx(0.5)

    def test_preferred_area_filters_objects(self):
        area = Rect(0.0, 0.0, 1.0, 1.0)
        query = SurgeQuery(
            rect_width=1.0, rect_height=1.0, window_length=1.0, alpha=0.5, area=area
        )
        current = [obj(0.5, 0.5, 1.0), obj(5.0, 5.0, 100.0)]
        best = best_region_brute_force(current, [], query)
        assert best.score == pytest.approx(1.0)

    def test_four_corner_cluster_with_surrounding_past_objects(self):
        # Inspired by Lemma 7's tight example: four current objects around the
        # junction of four cells, with one past object at each cell centre.
        # Every 2x2 region containing all four current objects necessarily
        # contains exactly one of the past objects, so the optimum is
        # 0.5*(4-1) + 0.5*4 = 3.5.
        query = SurgeQuery(rect_width=2.0, rect_height=2.0, window_length=1.0, alpha=0.5)
        eps = 0.2
        current = [
            obj(2.0 - eps, 2.0 - eps),
            obj(2.0 + eps, 2.0 - eps),
            obj(2.0 - eps, 2.0 + eps),
            obj(2.0 + eps, 2.0 + eps),
        ]
        past = [obj(1.0, 1.0), obj(3.0, 1.0), obj(1.0, 3.0), obj(3.0, 3.0)]
        best = best_region_brute_force(current, past, query)
        assert best.score == pytest.approx(3.5)


class TestGreedyTopK:
    def test_two_separated_clusters(self, unit_query):
        cluster_a = [obj(0.0, 0.0, 3.0, 1), obj(0.2, 0.2, 3.0, 2)]
        cluster_b = [obj(5.0, 5.0, 2.0, 3), obj(5.2, 5.2, 2.0, 4)]
        results = greedy_top_k_brute_force(cluster_a + cluster_b, [], unit_query, k=2)
        assert len(results) == 2
        assert results[0].score == pytest.approx(6.0)
        assert results[1].score == pytest.approx(4.0)

    def test_objects_are_not_double_counted(self, unit_query):
        # A single tight cluster: the second region must not reuse its objects.
        cluster = [obj(0.0, 0.0, 5.0, 1), obj(0.1, 0.1, 5.0, 2)]
        results = greedy_top_k_brute_force(cluster, [], unit_query, k=2)
        assert results[0].score == pytest.approx(10.0)
        assert len(results) == 1 or results[1].score == pytest.approx(0.0)

    def test_k_defaults_to_query_k(self):
        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=1.0, k=2)
        objects = [obj(0.0, 0.0, 1.0, 1), obj(5.0, 5.0, 1.0, 2)]
        results = greedy_top_k_brute_force(objects, [], query)
        assert len(results) == 2

    def test_scores_are_non_increasing(self, unit_query):
        objects = [obj(float(i % 5), float(i // 5), 1.0 + i * 0.1, i) for i in range(20)]
        results = greedy_top_k_brute_force(objects, [], unit_query, k=4)
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_empty_snapshot_returns_nothing(self, unit_query):
        assert greedy_top_k_brute_force([], [], unit_query, k=3) == []
