"""Unit tests for the lazy addressable max-heap."""

import pytest

from repro.geometry.heaps import LazyMaxHeap


class TestBasicOperations:
    def test_empty_heap(self):
        heap = LazyMaxHeap()
        assert heap.peek() is None
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop()

    def test_push_and_peek(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 3.0)
        heap.push("c", 2.0)
        assert heap.peek() == ("b", 3.0)
        assert len(heap) == 3

    def test_pop_returns_descending_order(self):
        heap = LazyMaxHeap()
        for key, priority in [("a", 1.0), ("b", 5.0), ("c", 3.0), ("d", 4.0)]:
            heap.push(key, priority)
        popped = [heap.pop() for _ in range(4)]
        assert popped == [("b", 5.0), ("d", 4.0), ("c", 3.0), ("a", 1.0)]
        assert len(heap) == 0

    def test_update_priority_overrides_previous(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.push("a", 10.0)
        assert heap.peek() == ("a", 10.0)
        assert len(heap) == 2

    def test_decrease_priority(self):
        heap = LazyMaxHeap()
        heap.push("a", 10.0)
        heap.push("b", 5.0)
        heap.push("a", 1.0)
        assert heap.peek() == ("b", 5.0)

    def test_remove(self):
        heap = LazyMaxHeap()
        heap.push("a", 10.0)
        heap.push("b", 5.0)
        heap.remove("a")
        assert heap.peek() == ("b", 5.0)
        assert "a" not in heap
        heap.remove("missing")  # no-op

    def test_contains_and_priority_of(self):
        heap = LazyMaxHeap()
        heap.push("x", 7.0)
        assert "x" in heap
        assert heap.priority_of("x") == 7.0
        assert heap.priority_of("y") is None
        assert heap.priority_of("y", default=0.0) == 0.0

    def test_clear(self):
        heap = LazyMaxHeap()
        heap.push("x", 1.0)
        heap.clear()
        assert len(heap) == 0
        assert heap.peek() is None

    def test_iteration_yields_live_entries(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.push("a", 3.0)
        assert dict(iter(heap)) == {"a": 3.0, "b": 2.0}


class TestTopN:
    def test_top_n_sorted_descending(self):
        heap = LazyMaxHeap()
        for index in range(10):
            heap.push(index, float(index))
        assert heap.top_n(3) == [(9, 9.0), (8, 8.0), (7, 7.0)]

    def test_top_n_larger_than_heap(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        assert heap.top_n(5) == [("a", 1.0)]

    def test_top_n_zero_or_negative(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        assert heap.top_n(0) == []
        assert heap.top_n(-2) == []

    def test_top_n_reflects_updates(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.push("a", 5.0)
        assert heap.top_n(2) == [("a", 5.0), ("b", 2.0)]


class TestStressAndCompaction:
    def test_many_updates_remain_consistent(self):
        heap = LazyMaxHeap()
        reference = {}
        import random

        rng = random.Random(1)
        for step in range(3000):
            key = rng.randrange(40)
            if rng.random() < 0.15 and key in reference:
                heap.remove(key)
                del reference[key]
            else:
                priority = rng.random() * 100
                heap.push(key, priority)
                reference[key] = priority
            if reference:
                best_key, best_priority = max(reference.items(), key=lambda kv: kv[1])
                top = heap.peek()
                assert top is not None
                assert top[1] == pytest.approx(best_priority)
            else:
                assert heap.peek() is None
        assert len(heap) == len(reference)

    def test_pop_skips_stale_entries(self):
        heap = LazyMaxHeap()
        heap.push("a", 5.0)
        heap.push("a", 1.0)
        heap.push("b", 3.0)
        assert heap.pop() == ("b", 3.0)
        assert heap.pop() == ("a", 1.0)
        with pytest.raises(IndexError):
            heap.pop()


class TestRemoveCompaction:
    def test_remove_heavy_churn_keeps_heap_bounded(self):
        # Regression test: remove() used to delete only from the priority map
        # and never trigger compaction, so a push/remove churn grew the
        # internal heap list without bound.
        heap = LazyMaxHeap()
        live = 16
        for key in range(live):
            heap.push(("live", key), float(key))
        for step in range(5000):
            heap.push(("churn", step), 1.0)
            heap.remove(("churn", step))
            # At most: the compaction threshold plus the entries pushed since
            # the last compaction could halve the list.
            assert len(heap._heap) <= max(64, 2 * len(heap._priorities)) + 1
        assert len(heap) == live

    def test_remove_alone_compacts_stale_entries(self):
        heap = LazyMaxHeap()
        for key in range(200):
            heap.push(key, float(key))
        for key in range(199):
            heap.remove(key)
        assert len(heap) == 1
        assert len(heap._heap) <= 64
        assert heap.peek() == (199, 199.0)

    def test_remove_missing_key_is_noop(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.remove("missing")
        assert len(heap) == 1
        assert heap.peek() == ("a", 1.0)


class TestPushAll:
    def test_push_all_matches_individual_pushes(self):
        import random

        rng = random.Random(3)
        reference = LazyMaxHeap()
        bulk = LazyMaxHeap()
        for round_number in range(20):
            items = [
                (rng.randrange(50), rng.uniform(0.0, 100.0))
                for _ in range(rng.randrange(0, 30))
            ]
            for key, priority in items:
                reference.push(key, priority)
            bulk.push_all(items)
            if rng.random() < 0.5 and len(reference):
                key = rng.randrange(50)
                reference.remove(key)
                bulk.remove(key)
            assert len(reference) == len(bulk)
            assert reference.peek() == bulk.peek()
            assert sorted(reference) == sorted(bulk)

    def test_push_all_empty_iterable_is_noop(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push_all([])
        heap.push_all(iter(()))
        assert len(heap) == 1
        assert heap.peek() == ("a", 1.0)

    def test_push_all_large_batch_heapifies_and_stays_consistent(self):
        heap = LazyMaxHeap()
        heap.push_all((key, float(key % 97)) for key in range(1000))
        assert len(heap) == 1000
        drained = []
        while len(heap):
            drained.append(heap.pop()[1])
        assert drained == sorted(drained, reverse=True)

    def test_push_all_updates_existing_keys(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 5.0)
        heap.push_all([("a", 10.0), ("b", 0.5)])
        assert heap.peek() == ("a", 10.0)
        assert heap.priority_of("b") == 0.5

    def test_push_all_triggers_single_compaction(self):
        heap = LazyMaxHeap()
        # Many updates of the same small key set: stale entries pile up and
        # the single trailing compaction check must still bound the heap.
        for _ in range(50):
            heap.push_all([(key, float(key)) for key in range(10)])
        assert len(heap) == 10
        assert len(heap._heap) <= max(64, 2 * len(heap._priorities)) + 20
