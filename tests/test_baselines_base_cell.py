"""Unit tests for the Base cell baseline (no upper bounds)."""

import pytest

from tests.helpers import feed, make_objects, scores_close
from repro.baselines.base_cell import BaseCellDetector
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestBaseCellDetector:
    def test_no_objects_no_result(self, small_query):
        assert BaseCellDetector(small_query).result() is None

    def test_single_object(self, small_query):
        detector = BaseCellDetector(small_query)
        feed(detector, [obj(1.5, 1.5, 0.0, 2.0)], small_query.window_length)
        assert detector.result().score == pytest.approx(0.1)

    def test_every_accepted_event_triggers_searches(self, small_query):
        detector = BaseCellDetector(small_query)
        feed(detector, make_objects(25, seed=2), small_query.window_length)
        stats = detector.stats
        assert stats.events_triggering_search == stats.events_processed - stats.events_skipped
        # Each event touches between one and four (occasionally a few more,
        # when aligned with grid lines) cells, each of which is swept.
        assert stats.cells_searched >= stats.events_triggering_search

    def test_searches_more_cells_than_ccs(self, small_query):
        objects = make_objects(100, seed=3, extent=6.0)
        base = BaseCellDetector(small_query)
        ccs = CellCSPOT(small_query)
        feed(base, objects, small_query.window_length)
        feed(ccs, objects, small_query.window_length)
        assert base.stats.cells_searched > ccs.stats.cells_searched

    def test_expiration_cleans_up(self, small_query):
        detector = BaseCellDetector(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for event in windows.observe(obj(1.0, 1.0, 0.0)):
            detector.process(event)
        for event in windows.advance_time(200.0):
            detector.process(event)
        assert detector.result() is None

    def test_matches_exact_detector_continuously(self, small_query):
        base = BaseCellDetector(small_query)
        ccs = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in make_objects(70, seed=5, extent=5.0):
            for event in windows.observe(spatial):
                base.process(event)
                ccs.process(event)
            assert scores_close(base.current_score(), ccs.current_score())
