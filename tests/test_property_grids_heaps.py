"""Property-based tests for the grid addressing and the lazy max-heap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grids import GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.geometry.primitives import Rect

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
cell_sizes = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)


class TestGridProperties:
    @given(x=coords, y=coords, cw=cell_sizes, ch=cell_sizes, ox=coords, oy=coords)
    @settings(max_examples=100)
    def test_point_lies_in_its_cell(self, x, y, cw, ch, ox, oy):
        grid = GridSpec(cell_width=cw, cell_height=ch, origin_x=ox, origin_y=oy)
        index = grid.cell_of(x, y)
        cell = grid.cell_rect(index)
        # Floating-point division can land a boundary point one cell over;
        # allow a tolerance of one part in a million of the cell size.
        assert cell.min_x - 1e-6 * cw <= x <= cell.max_x + 1e-6 * cw
        assert cell.min_y - 1e-6 * ch <= y <= cell.max_y + 1e-6 * ch

    @given(x=coords, y=coords, cw=cell_sizes, ch=cell_sizes)
    @settings(max_examples=100)
    def test_query_sized_rectangle_overlaps_at_most_nine_cells(self, x, y, cw, ch):
        """Lemma 1: at most 4 cells in general position, up to 9 when aligned."""
        grid = GridSpec(cell_width=cw, cell_height=ch)
        rect = Rect(x, y, x + cw, y + ch)
        cells = list(grid.cells_overlapping(rect))
        assert 1 <= len(cells) <= 9
        for index in cells:
            assert grid.cell_rect(index).intersects(rect)

    @given(x=coords, y=coords, cw=cell_sizes, ch=cell_sizes)
    @settings(max_examples=60)
    def test_shifted_grid_covers_the_same_point(self, x, y, cw, ch):
        grid = GridSpec(cell_width=cw, cell_height=ch)
        for shifted in grid.mgap_family():
            index = shifted.cell_of(x, y)
            cell = shifted.cell_rect(index)
            assert cell.min_x - 1e-6 * cw <= x <= cell.max_x + 1e-6 * cw


class TestHeapProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["push", "remove"]),
                st.integers(min_value=0, max_value=20),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60)
    def test_heap_matches_reference_dictionary(self, operations):
        heap = LazyMaxHeap()
        reference: dict[int, float] = {}
        for op, key, priority in operations:
            if op == "push":
                heap.push(key, priority)
                reference[key] = priority
            else:
                heap.remove(key)
                reference.pop(key, None)
            assert len(heap) == len(reference)
            top = heap.peek()
            if reference:
                assert top is not None
                assert top[1] == max(reference.values())
            else:
                assert top is None

    @given(
        entries=st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            max_size=30,
        ),
        n=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60)
    def test_top_n_matches_sorted_reference(self, entries, n):
        heap = LazyMaxHeap()
        for key, priority in entries.items():
            heap.push(key, priority)
        expected = sorted(entries.values(), reverse=True)[:n]
        got = [priority for _, priority in heap.top_n(n)]
        assert got == expected
