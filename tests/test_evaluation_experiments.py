"""Tests for the experiment drivers (scaled-down versions of every figure/table)."""

import pytest

pytest.importorskip("numpy", reason="the synthetic dataset generators need numpy (pip install .[fast])")

from repro.datasets.profiles import TAXI_PROFILE, UK_PROFILE
from repro.evaluation import experiments


class TestTable1:
    def test_rows_cover_all_datasets(self):
        rows = experiments.table1_dataset_statistics(n_objects=300)
        assert [row["dataset"] for row in rows] == ["UK", "US", "Taxi"]
        for row in rows:
            assert row["objects"] >= 300
            assert row["measured_rate_per_hour"] == pytest.approx(
                row["target_rate_per_hour"], rel=0.3
            )


class TestRuntimeSweeps:
    def test_runtime_vs_window_shape(self):
        series = experiments.runtime_vs_window(
            TAXI_PROFILE,
            algorithms=("ccs", "gaps"),
            n_objects=250,
            window_values=[60.0, 300.0],
        )
        assert set(series) == {"ccs", "gaps"}
        for points in series.values():
            assert set(points) == {60.0, 300.0}
            assert all(value > 0 for value in points.values())

    def test_runtime_vs_rect_size_shape(self):
        series = experiments.runtime_vs_rect_size(
            TAXI_PROFILE, algorithms=("gaps",), n_objects=250, multipliers=(1.0, 2.0)
        )
        assert set(series["gaps"]) == {1.0, 2.0}

    def test_runtime_vs_alpha_shape(self):
        series = experiments.runtime_vs_alpha(
            TAXI_PROFILE, algorithms=("gaps",), n_objects=200, alphas=(0.1, 0.9)
        )
        assert set(series["gaps"]) == {0.1, 0.9}


class TestSearchRatio:
    def test_ccs_triggers_fewer_searches_than_bccs(self):
        series = experiments.search_trigger_ratio_vs_window(
            TAXI_PROFILE, n_objects=400, window_values=[300.0]
        )
        assert series["ccs"][300.0] <= series["bccs"][300.0] + 1e-9
        assert 0.0 <= series["ccs"][300.0] <= 100.0


class TestApproximationRatios:
    def test_ratio_vs_alpha_within_bounds(self):
        series = experiments.ratio_vs_alpha(
            TAXI_PROFILE, n_objects=250, alphas=(0.5,), sample_every=10
        )
        for name in ("gaps", "mgaps"):
            ratio = series[name][0.5]
            assert 12.5 - 1e-6 <= ratio <= 100.0 + 1e-6
        assert series["mgaps"][0.5] >= series["gaps"][0.5] - 5.0

    def test_ratio_vs_window_within_bounds(self):
        series = experiments.ratio_vs_window(
            TAXI_PROFILE, n_objects=250, window_values=[300.0], sample_every=10
        )
        assert 12.5 <= series["gaps"][300.0] <= 100.0 + 1e-6


class TestScalability:
    def test_processing_time_reported_per_rate(self):
        series = experiments.scalability_vs_arrival_rate(
            [TAXI_PROFILE],
            algorithm="gaps",
            n_objects=200,
            rates_per_day=(2_000_000, 10_000_000),
            window_seconds=60.0,
        )
        points = series["Taxi"]
        assert set(points) == {2_000_000, 10_000_000}
        assert all(value >= 0 for value in points.values())


class TestTopK:
    def test_topk_runtime_vs_window(self):
        series = experiments.topk_runtime_vs_window(
            TAXI_PROFILE,
            n_objects=200,
            k=3,
            window_values=[300.0],
            algorithms=("kgaps", "kmgaps"),
        )
        assert set(series) == {"kgaps", "kmgaps"}
        assert series["kgaps"][300.0] > 0

    def test_topk_runtime_vs_k(self):
        points = experiments.topk_runtime_vs_k(
            TAXI_PROFILE, algorithm="kgaps", n_objects=200, k_values=(3, 5)
        )
        assert set(points) == {3, 5}


class TestCaseStudy:
    def test_detector_finds_the_planted_event(self):
        outcome = experiments.case_study(keyword="concert", n_background=400, seed=11)
        assert outcome["keyword"] == "concert"
        assert outcome["objects_with_keyword"] > 0
        assert outcome["detected_region"] is not None
        assert outcome["hit"] is True
