"""Unit suite for the seeded fault injector shared by tests, smokes, benches."""

from __future__ import annotations

import math
import random

import pytest

from repro.streams.faults import POISON_KINDS, FaultInjector, FaultProfile
from repro.streams.objects import SpatialObject
from repro.streams.watermark import WatermarkReorderBuffer, classify_bad_record


def make_clean(count: int, seed: int = 3) -> list[SpatialObject]:
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(count):
        t += rng.uniform(0.1, 0.5)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 5.0),
                object_id=index,
                attributes={"keywords": (rng.choice(("a", "b")),)},
            )
        )
    return objects


class TestFaultProfile:
    def test_fraction_bounds_validated(self):
        with pytest.raises(ValueError, match="disorder_fraction"):
            FaultProfile(disorder_fraction=1.5, max_disorder=1.0)
        with pytest.raises(ValueError, match="poison_fraction"):
            FaultProfile(poison_fraction=-0.1)

    def test_disorder_requires_a_bound(self):
        with pytest.raises(ValueError, match="max_disorder"):
            FaultProfile(disorder_fraction=0.1)

    def test_flash_crowd_factor_and_delay_validated(self):
        with pytest.raises(ValueError, match="flash_crowd_factor"):
            FaultProfile(flash_crowd_factor=0.5)
        with pytest.raises(ValueError, match="duplicate_delay"):
            FaultProfile(duplicate_delay=-1.0)

    def test_unknown_poison_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown poison kinds"):
            FaultProfile(poison_kinds=("nan_timestamp", "gremlin"))


class TestFaultInjector:
    def test_no_faults_is_the_identity_replay(self):
        clean = make_clean(30)
        injector = FaultInjector(clean, seed=1)
        assert injector.materialize() == clean
        assert injector.reference() == clean
        assert (injector.disordered, injector.duplicates, injector.poisoned) == (0, 0, 0)

    def test_same_seed_same_arrivals(self):
        clean = make_clean(60)
        kwargs = dict(
            disorder_fraction=0.2,
            max_disorder=2.0,
            duplicate_fraction=0.05,
            poison_fraction=0.05,
        )
        first = FaultInjector(clean, seed=9, **kwargs)
        second = FaultInjector(clean, seed=9, **kwargs)
        # Compared by repr: poison records carry NaN fields, and NaN != NaN
        # would make object equality vacuously fail.
        assert repr(first.materialize()) == repr(second.materialize())
        assert repr(FaultInjector(clean, seed=10, **kwargs).materialize()) != repr(
            first.materialize()
        )

    def test_reference_is_sorted_regardless_of_input_order(self):
        clean = make_clean(20)
        shuffled = list(reversed(clean))
        injector = FaultInjector(shuffled, seed=2)
        assert injector.reference() == clean

    def test_disorder_stays_within_the_declared_bound(self):
        clean = make_clean(200)
        injector = FaultInjector(
            clean, seed=5, disorder_fraction=0.3, max_disorder=2.5
        )
        arrivals = injector.materialize()
        assert injector.disordered > 0
        assert arrivals != clean
        # The operational definition of the bound: a reorder buffer with
        # max_lateness == max_disorder absorbs the disorder losslessly and
        # reproduces the reference exactly.
        buffer = WatermarkReorderBuffer(2.5)
        released = buffer.push_many(arrivals) + buffer.flush()
        assert released == injector.reference()
        assert buffer.late_dropped == 0
        assert buffer.reordered <= injector.disordered

    def test_duplicates_share_ids_and_match_buffer_counter(self):
        clean = make_clean(150)
        injector = FaultInjector(
            clean,
            seed=6,
            disorder_fraction=0.1,
            max_disorder=1.0,
            duplicate_fraction=0.1,
            duplicate_delay=1.0,
        )
        arrivals = injector.materialize()
        assert injector.duplicates > 0
        assert len(arrivals) == len(clean) + injector.duplicates
        # Sized per the documented bound: max_disorder + duplicate_delay.
        buffer = WatermarkReorderBuffer(2.0)
        buffer.push_many(arrivals)
        buffer.flush()
        assert buffer.duplicates_seen == injector.duplicates
        assert buffer.late_dropped == 0

    def test_poison_records_are_all_screenable(self):
        clean = make_clean(100)
        injector = FaultInjector(
            clean, seed=7, poison_fraction=0.05, poison_kinds=POISON_KINDS
        )
        arrivals = injector.materialize()
        assert injector.poisoned == 5
        bad = [a for a in arrivals if classify_bad_record(a) is not None]
        assert len(bad) == injector.poisoned
        clean_survivors = [a for a in arrivals if classify_bad_record(a) is None]
        assert clean_survivors == clean  # poison never perturbs the stream

    def test_poison_kinds_are_respected(self):
        clean = make_clean(50)
        injector = FaultInjector(
            clean, seed=8, poison_fraction=0.1, poison_kinds=("nan_timestamp",)
        )
        bad = [a for a in injector if classify_bad_record(a) is not None]
        assert bad and all(
            isinstance(a, SpatialObject) and math.isnan(a.timestamp) for a in bad
        )

    def test_flash_crowd_compresses_the_window_and_keeps_order(self):
        clean = make_clean(100)
        injector = FaultInjector(clean, seed=9, flash_crowd_factor=4.0)
        reference = injector.reference()
        assert injector.materialize() == reference  # ramp alone adds no disorder
        times = [o.timestamp for o in reference]
        assert times == sorted(times)
        assert reference[-1].timestamp < clean[-1].timestamp
        assert [o.object_id for o in reference] == [o.object_id for o in clean]
        # Outside the window the inter-arrival gaps are untouched.
        assert reference[1].timestamp - reference[0].timestamp == pytest.approx(
            clean[1].timestamp - clean[0].timestamp
        )

    def test_len_and_iter_agree_with_materialize(self):
        clean = make_clean(40)
        injector = FaultInjector(
            clean, seed=11, duplicate_fraction=0.1, poison_fraction=0.05
        )
        assert list(injector) == injector.materialize()
        assert len(injector) == len(clean) + injector.duplicates + injector.poisoned


class TestLatencyProfiles:
    def test_latency_fractions_and_delays_validated(self):
        with pytest.raises(ValueError, match="slow_subscriber_fraction"):
            FaultProfile(slow_subscriber_fraction=1.5)
        with pytest.raises(ValueError, match="detector_stall_fraction"):
            FaultProfile(detector_stall_fraction=-0.1)
        with pytest.raises(ValueError, match="slow_subscriber_delay"):
            FaultProfile(slow_subscriber_delay=-1.0)
        with pytest.raises(ValueError, match="detector_stall_delay"):
            FaultProfile(detector_stall_delay=-1.0)

    def test_slow_subscriber_stalls_a_seeded_fraction_and_forwards(self):
        clean = make_clean(10)
        injector = FaultInjector(
            clean, seed=13, slow_subscriber_fraction=0.5, slow_subscriber_delay=0.0
        )
        got = []
        callback = injector.make_slow_subscriber(got.append)
        for index in range(40):
            callback(index)
        assert got == list(range(40))  # every update still delivered
        assert 0 < injector.subscriber_stalls < 40
        # Same seed, same stall schedule.
        twin = FaultInjector(
            clean, seed=13, slow_subscriber_fraction=0.5, slow_subscriber_delay=0.0
        )
        twin_callback = twin.make_slow_subscriber(None)
        for index in range(40):
            twin_callback(index)
        assert twin.subscriber_stalls == injector.subscriber_stalls

    def test_disabled_slow_subscriber_never_stalls(self):
        injector = FaultInjector(make_clean(5), seed=13)
        callback = injector.make_slow_subscriber(None)
        for index in range(20):
            callback(index)
        assert injector.subscriber_stalls == 0

    def test_stall_gate_is_keyed_by_chunk_index(self):
        clean = make_clean(10)
        injector = FaultInjector(
            clean, seed=17, detector_stall_fraction=0.5, detector_stall_delay=0.0
        )
        gate = injector.make_stall_gate()
        for index in range(40):
            gate(index)
        first = injector.detector_stalls
        assert 0 < first < 40
        # Replaying the same chunk indices meets the same decisions — the
        # property a resumed chaos run relies on.
        for index in range(40):
            gate(index)
        assert injector.detector_stalls == 2 * first

    def test_disabled_stall_gate_is_a_no_op(self):
        injector = FaultInjector(make_clean(5), seed=17)
        gate = injector.make_stall_gate()
        for index in range(20):
            gate(index)
        assert injector.detector_stalls == 0
