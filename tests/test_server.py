"""Wire-level integration tests for the network tier (``repro.server``).

Everything here runs a real :class:`~repro.server.server.SurgeServer` on a
loopback socket (port 0) and talks to it with the blocking
:class:`~repro.server.client.ServerClient` — the same path production
traffic takes.  The invariants under test:

* every request gets a **typed reply** — overload surfaces as a ``503``
  error frame with depth and advice, never a dropped connection;
* results served over the wire are **bit-identical** to an in-process
  serial reference over the same arrival sequence, including under
  concurrent registry churn and multi-connection ingest (satellite:
  wire-level churn);
* ``GET /metrics`` is valid Prometheus text exposition with the overload,
  ingest and per-query lag series;
* degraded-mode transitions and drains are pushed to subscribers as
  ``control`` frames, and a drained engine refuses late commands with a
  typed draining error.
"""

from __future__ import annotations

import random
import re
import socket
import threading
import time

import pytest

from repro.core.query import SurgeQuery
from repro.server import (
    EndpointInUseError,
    EngineDrainingError,
    ServerClient,
    ServerEngine,
    ServerError,
    SurgeServer,
    http_get,
)
from repro.server.client import connect_backoff_schedule
from repro.server.protocol import decode_result
from repro.service import OverloadConfig, OverloadError, QuerySpec, SurgeService
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject

MAX_LATENESS = 2.0


def make_clean(count: int, seed: int) -> list[SpatialObject]:
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(count):
        t += rng.uniform(0.1, 0.6)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 5.0),
                object_id=index,
                attributes={"keywords": (rng.choice(("concert", "parade")),)},
            )
        )
    return objects


def make_spec(query_id: str, keyword: str | None = None, priority: int = 0) -> QuerySpec:
    return QuerySpec(
        query_id=query_id,
        query=SurgeQuery(1.5, 1.5, window_length=8.0, alpha=0.5),
        algorithm="ccs",
        keyword=keyword,
        backend="python",
        priority=priority,
    )


@pytest.fixture
def server_factory():
    servers: list[SurgeServer] = []

    def start(service: SurgeService, **kwargs) -> SurgeServer:
        server = SurgeServer(service, port=0, **kwargs)
        server.start_background()
        servers.append(server)
        return server

    yield start
    for server in servers:
        try:
            server.drain(timeout=30)
        except Exception:
            pass


def connect(server: SurgeServer) -> ServerClient:
    return ServerClient("127.0.0.1", server.port, timeout=30)


def serial_reference(specs, arrivals, *, chunk_size=8, max_lateness=0.0):
    with SurgeService(specs, max_lateness=max_lateness) as service:
        for batch in [arrivals]:
            for _ in service.feed(batch, chunk_size):
                pass
        for _ in service.flush_pending():
            pass
        return service.results()


class TestRequestReply:
    def test_full_session_bit_identical_to_serial(self, server_factory):
        stream = make_clean(64, seed=3)
        specs = [make_spec("kw", "concert"), make_spec("all")]
        service = SurgeService([specs[0]])
        server = server_factory(service, chunk_size=8)
        with connect(server) as client:
            assert client.ping()["pong"] is True
            ack = client.register(specs[1])
            assert ack["query_id"] == "all" and ack["queries"] == 2
            ack = client.ingest(stream[:40])
            assert ack["accepted"] == 40 and ack["chunks_dispatched"] == 5
            ack = client.ingest(stream[40:])
            assert ack["accepted"] == 24
            client.flush()
            results = {
                query_id: decode_result(record)
                for query_id, record in client.results().items()
            }
        assert results == serial_reference(specs, stream)

    def test_typed_errors(self, server_factory):
        service = SurgeService([make_spec("kw", "concert")])
        server = server_factory(service)
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.unregister("nope")
            assert excinfo.value.code == 404
            with pytest.raises(ServerError) as excinfo:
                client.register(make_spec("kw", "concert"))
            assert excinfo.value.code == 409
            with pytest.raises(ServerError) as excinfo:
                client.request({"type": "frobnicate"})
            assert excinfo.value.code == 400
            with pytest.raises(ServerError) as excinfo:
                client.request({"type": "ingest", "objects": "not-a-list"})
            assert excinfo.value.code == 400
            # The connection survived all four refusals.
            assert client.ping()["pong"] is True

    def test_malformed_json_gets_400_not_a_hangup(self, server_factory):
        import struct

        service = SurgeService([make_spec("q")])
        server = server_factory(service)
        with connect(server) as client:
            body = b"{broken json"
            client._sock.sendall(struct.pack(">I", len(body)) + body)
            frame = client.recv_raw()
            assert frame["type"] == "error" and frame["code"] == 400
            assert client.ping()["pong"] is True

    def test_unregister_then_results_drop_the_query(self, server_factory):
        service = SurgeService([make_spec("a"), make_spec("b")])
        server = server_factory(service)
        with connect(server) as client:
            client.ingest(make_clean(16, seed=1))
            client.flush()
            assert set(client.results()) == {"a", "b"}
            client.unregister("b")
            assert set(client.results()) == {"a"}


class TestSubscriptions:
    def test_pushed_results_match_polled(self, server_factory):
        stream = make_clean(32, seed=5)
        service = SurgeService([make_spec("kw", "concert")])
        server = server_factory(service, chunk_size=8)
        with connect(server) as subscriber, connect(server) as feeder:
            ack = subscriber.subscribe(maxsize=128, name="watcher")
            assert ack["subscription"] == "watcher"
            feeder.ingest(stream)
            feeder.flush()
            frames = [subscriber.recv_result() for _ in range(4)]
            assert [frame["chunk_index"] for frame in frames] == [0, 1, 2, 3]
            final = decode_result(frames[-1]["result"])
            polled = decode_result(feeder.results()["kw"])
            assert final == polled

    def test_query_filtered_subscription(self, server_factory):
        stream = make_clean(32, seed=6)
        service = SurgeService([make_spec("kw", "concert"), make_spec("all")])
        server = server_factory(service, chunk_size=8)
        with connect(server) as subscriber, connect(server) as feeder:
            subscriber.subscribe(maxsize=128, queries=["all"], name="only-all")
            feeder.ingest(stream)
            feeder.flush()
            frames = [subscriber.recv_result() for _ in range(4)]
            assert {frame["query_id"] for frame in frames} == {"all"}

    def test_second_subscribe_on_same_connection_is_409(self, server_factory):
        service = SurgeService([make_spec("q")])
        server = server_factory(service)
        with connect(server) as client:
            client.subscribe(maxsize=8)
            with pytest.raises(ServerError) as excinfo:
                client.subscribe(maxsize=8)
            assert excinfo.value.code == 409


class TestOverloadOnTheWire:
    def test_service_overload_is_a_503_reply_not_a_hangup(self, server_factory):
        service = SurgeService([make_spec("q")])
        server = server_factory(service, chunk_size=4)
        # An in-process blocking subscription nobody drains: the publish
        # path times out into OverloadError once its one-slot queue is full.
        server.engine.submit(
            "subscribe",
            {"maxsize": 1, "policy": "block", "block_timeout": 0.1},
        ).result(timeout=10)
        stream = make_clean(16, seed=7)
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.ingest(stream)
            assert excinfo.value.code == 503
            assert excinfo.value.overloaded
            assert "depth_chunks" in excinfo.value.info
            assert "advice" in excinfo.value.info
            # The connection is alive and the server keeps serving.
            assert client.ping()["pong"] is True
            assert isinstance(client.stats()["degraded"], bool)

    def test_engine_admission_bound_is_typed(self):
        service = SurgeService([make_spec("q")])
        engine = ServerEngine(service, chunk_size=4, max_queued_batches=1)
        try:
            release = threading.Event()
            started = threading.Event()

            class Stall:
                def __len__(self):
                    return 0

                def __iter__(self):
                    started.set()
                    release.wait(timeout=30)
                    return iter(())

            blocked = engine.submit("ingest", Stall())
            # Once the worker is provably stuck inside the first batch,
            # fill the one admission slot; the next submission must be
            # refused with a typed OverloadError at submit time.
            assert started.wait(timeout=10)
            queued = engine.submit("ingest", [])
            rejected = engine.submit("ingest", [])
            with pytest.raises(OverloadError) as excinfo:
                rejected.result(timeout=10)
            assert excinfo.value.depth_chunks >= 1
            assert engine.ingest_rejected == 1
            release.set()
            blocked.result(timeout=10)
            queued.result(timeout=10)
        finally:
            engine.stop()
            service.close()

    def test_degraded_transitions_pushed_as_control_frames(self, server_factory):
        service = SurgeService(
            [make_spec("q")],
            overload=OverloadConfig(
                high_watermark_chunks=3.0,
                low_watermark_chunks=1.0,
                policy="shed",
            ),
        )
        server = server_factory(service, chunk_size=4)
        # Depth source: an undrained in-process subscription (updates per
        # query count how many chunks' answers sit unconsumed).
        laggard = server.engine.submit(
            "subscribe", {"maxsize": 1024, "policy": "drop_oldest"}
        ).result(timeout=10)
        stream = make_clean(400, seed=8)
        subscriber = connect(server)
        subscriber.subscribe(maxsize=1024, name="ops")
        controls: list[dict] = []

        def read_pushed() -> None:
            # Consume every pushed frame (keeping the ops subscription
            # shallow) and collect the control events.
            try:
                while True:
                    frame = subscriber.recv()
                    if frame.get("type") == "control":
                        controls.append(frame)
            except (ConnectionError, OSError, ServerError):
                pass

        reader = threading.Thread(target=read_pushed, daemon=True)
        reader.start()

        def wait_for(event: str, deadline_seconds: float = 30.0) -> dict | None:
            deadline = time.monotonic() + deadline_seconds
            while time.monotonic() < deadline:
                for frame in list(controls):
                    if frame.get("event") == event:
                        return frame
                time.sleep(0.02)
            return None

        with connect(server) as feeder:
            feeder.ingest(stream[:32])  # 8 undrained chunks > high watermark
            entered = wait_for("degraded_entered")
            assert entered is not None
            assert entered["depth_chunks"] >= 3.0
            # Remove the laggard; subsequent ingests re-evaluate the
            # watermark against the (promptly pumped) wire subscription
            # and the service exits degraded mode.
            server.engine.submit("unsubscribe", laggard).result(timeout=10)
            cursor = 32
            exited = None
            while exited is None and cursor < len(stream):
                feeder.ingest(stream[cursor : cursor + 4])
                cursor += 4
                exited = wait_for("degraded_exited", 0.2)
            assert exited is not None
            stats = feeder.stats()
            assert stats["overload"]["entered_degraded"] >= 1
            assert stats["overload"]["exited_degraded"] >= 1
        subscriber.close()
        reader.join(timeout=10)


class TestMetricsEndpoint:
    SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+$"
    )
    COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")

    def test_metrics_are_valid_prometheus_text(self, server_factory):
        service = SurgeService([make_spec("kw", "concert")])
        server = server_factory(service, chunk_size=8, metrics_port=0)
        with connect(server) as client:
            client.ingest(make_clean(24, seed=9))
            client.flush()
        status, body = http_get("127.0.0.1", server.metrics_port, "/metrics")
        assert status == 200
        names = set()
        for line in body.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert self.COMMENT.match(line), line
            else:
                assert self.SAMPLE.match(line), line
                names.add(line.split("{")[0].split(" ")[0])
        # The surfaces the issue demands: overload, ingest, per-query lag.
        assert "repro_overload_degraded" in names
        assert "repro_overload_entered_degraded_total" in names
        assert "repro_ingest_quarantined_total" in names
        assert "repro_query_last_lag_seconds" in names
        assert "repro_service_objects_pushed_total 24" in body
        assert 'repro_query_objects_routed_total{query="kw"}' in body

    def test_healthz_and_404(self, server_factory):
        service = SurgeService([make_spec("q")])
        server = server_factory(service, metrics_port=0)
        status, body = http_get("127.0.0.1", server.metrics_port, "/healthz")
        assert (status, body) == (200, "ok\n")
        status, _ = http_get("127.0.0.1", server.metrics_port, "/nope")
        assert status == 404


class TestDrain:
    def test_drain_frame_notifies_subscribers_and_refuses_late_work(self):
        service = SurgeService([make_spec("q")])
        server = SurgeServer(service, port=0).start_background()
        subscriber = connect(server)
        subscriber.subscribe(maxsize=8, name="ops")
        with connect(server) as admin:
            admin.ingest(make_clean(8, seed=10))
            assert admin.drain()["draining"] is True
        # The draining control frame reaches the subscriber before the
        # connection is torn down.
        saw_draining = False
        try:
            while True:
                frame = subscriber.recv_raw()
                if frame.get("type") == "control" and frame.get("event") == "draining":
                    saw_draining = True
                    break
        except (ConnectionError, OSError):
            pass
        assert saw_draining
        subscriber.close()
        server.drain(timeout=30)
        assert server.drain_summary is not None
        # The engine refuses post-drain work with a typed error.
        with pytest.raises(EngineDrainingError):
            server.engine.submit("ingest", []).result(timeout=10)
        # And the listener is gone.
        with pytest.raises(OSError):
            ServerClient("127.0.0.1", server.port, timeout=2)

    def test_drain_without_durability_flushes_pending(self):
        stream = make_clean(20, seed=11)
        specs = [make_spec("kw", "concert"), make_spec("all")]
        service = SurgeService(list(specs))
        server = SurgeServer(service, port=0, chunk_size=8).start_background()
        with connect(server) as client:
            client.ingest(stream)  # 20 objects -> 2 full chunks + 4 pending
        summary = server.drain(timeout=30)
        assert summary["chunks_flushed"] == 1
        assert service.stats().objects_pushed == 20
        assert service.results() == serial_reference(specs, stream)
        service.close()


class TestWireChurn:
    def test_concurrent_churn_preserves_bit_identity(self, server_factory):
        """Satellite: N registrants churn while M connections ingest.

        Determinism: the M ingest connections send consecutive batches of
        the one true arrival sequence round-robin, each waiting for its
        own ack before passing the turn — so the service observes exactly
        the injector's arrival order regardless of scheduling.  The
        churned queries use a keyword absent from the stream, so the
        stable queries' results must match a churn-free serial reference
        bit-for-bit.
        """
        clean = make_clean(120, seed=12)
        injector = FaultInjector(
            clean, seed=23, disorder_fraction=0.25, max_disorder=MAX_LATENESS
        )
        arrivals = injector.materialize()
        stable = [make_spec("kw", "concert"), make_spec("all")]
        service = SurgeService(list(stable), max_lateness=MAX_LATENESS)
        server = server_factory(service, chunk_size=8)

        subscriber = connect(server)
        subscriber.subscribe(maxsize=4096, name="audit", queries=["kw", "all"])

        batches = [arrivals[i : i + 10] for i in range(0, len(arrivals), 10)]
        n_feeders = 3
        turn = threading.Condition()
        state = {"next": 0}
        feeder_errors: list[BaseException] = []

        def feeder(slot: int) -> None:
            try:
                with connect(server) as client:
                    for index in range(slot, len(batches), n_feeders):
                        with turn:
                            turn.wait_for(lambda: state["next"] == index)
                        # Send inside my turn and wait for the ack: the
                        # engine has fully consumed this batch before the
                        # next connection may send the following one.
                        client.ingest(batches[index])
                        with turn:
                            state["next"] = index + 1
                            turn.notify_all()
            except BaseException as exc:  # pragma: no cover - surfaced below
                feeder_errors.append(exc)
                with turn:
                    state["next"] = len(batches)
                    turn.notify_all()

        stop_churn = threading.Event()
        churn_errors: list[BaseException] = []

        def churner(slot: int) -> None:
            try:
                with connect(server) as client:
                    round_no = 0
                    while not stop_churn.is_set():
                        query_id = f"churn-{slot}-{round_no}"
                        client.register(make_spec(query_id, keyword="absent"))
                        client.unregister(query_id)
                        round_no += 1
            except BaseException as exc:  # pragma: no cover - surfaced below
                churn_errors.append(exc)

        feeders = [
            threading.Thread(target=feeder, args=(slot,)) for slot in range(n_feeders)
        ]
        churners = [threading.Thread(target=churner, args=(slot,)) for slot in range(3)]
        for thread in feeders + churners:
            thread.start()
        for thread in feeders:
            thread.join(timeout=120)
        stop_churn.set()
        for thread in churners:
            thread.join(timeout=30)
        assert not feeder_errors and not churn_errors
        assert state["next"] == len(batches)

        with connect(server) as admin:
            admin.flush()
            results = {
                query_id: decode_result(record)
                for query_id, record in admin.results().items()
                if query_id in ("kw", "all")
            }
            # Quiesce the pump, then check the conservation law from the
            # server-side counters.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = admin.stats()
                records = stats["subscriptions"]
                if records and all(
                    record["offered"]
                    == record["delivered"] + record["dropped"] + record["depth"]
                    for record in records
                ):
                    break
                time.sleep(0.05)
            assert records
            for record in records:
                assert (
                    record["offered"]
                    == record["delivered"] + record["dropped"] + record["depth"]
                ), record
        subscriber.close()

        expected = serial_reference(
            stable, arrivals, max_lateness=MAX_LATENESS
        )
        assert results == expected


class TestClientConnectResilience:
    """Satellite: ServerClient connect retries, backoff and request deadlines."""

    def test_backoff_schedule_doubles_and_caps(self):
        schedule = connect_backoff_schedule(6, base=0.1, cap=0.8, jitter=0.0)
        assert schedule == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]
        assert connect_backoff_schedule(0) == []

    def test_backoff_schedule_jitter_is_seeded_and_bounded(self):
        kwargs = dict(base=0.05, cap=1.0, jitter=0.5)
        jittered = connect_backoff_schedule(10, rng=random.Random(1234), **kwargs)
        assert jittered == connect_backoff_schedule(
            10, rng=random.Random(1234), **kwargs
        )
        plain = connect_backoff_schedule(10, jitter=0.0, base=0.05, cap=1.0)
        for delay, base_delay in zip(jittered, plain):
            # Stretched by a uniform factor in [1, 1.5): never shorter than
            # the exponential floor, never past the jitter bound.
            assert base_delay <= delay < base_delay * 1.5

    def test_refused_connection_without_retries_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(OSError):
            ServerClient("127.0.0.1", port, timeout=5.0)
        assert time.monotonic() - started < 2.0

    def test_connect_retries_ride_out_a_late_binding_listener(self):
        """A client started before its server connects once the bind lands."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        accepted = threading.Event()

        def late_bind():
            time.sleep(0.3)
            listener = socket.create_server(("127.0.0.1", port))
            try:
                conn, _ = listener.accept()
                accepted.set()
                conn.close()
            finally:
                listener.close()

        binder = threading.Thread(target=late_bind, daemon=True)
        binder.start()
        client = ServerClient(
            "127.0.0.1",
            port,
            timeout=5.0,
            connect_retries=40,
            connect_backoff=0.05,
            connect_backoff_max=0.2,
            connect_jitter=0.0,
        )
        client.close()
        binder.join(timeout=5.0)
        assert accepted.is_set()

    def test_request_deadline_bounds_a_stalled_reply(self):
        """A server that accepts but never answers cannot wedge the client."""
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            client = ServerClient(
                "127.0.0.1", listener.getsockname()[1], timeout=60.0
            )
            # Hold the accepted socket open: the server is connected but
            # will never answer.
            stalled, _ = listener.accept()
            started = time.monotonic()
            with pytest.raises(socket.timeout):
                client.request({"type": "ping"}, deadline=0.2)
            assert time.monotonic() - started < 5.0
            client.close()
            stalled.close()
        finally:
            listener.close()


class TestEndpointInUse:
    """Satellite: EADDRINUSE becomes a typed error naming the way out."""

    def test_start_background_raises_typed_error(self):
        occupier = socket.create_server(("127.0.0.1", 0))
        port = occupier.getsockname()[1]
        service = SurgeService([make_spec("q")])
        try:
            server = SurgeServer(service, host="127.0.0.1", port=port)
            with pytest.raises(EndpointInUseError) as excinfo:
                server.start_background()
            assert excinfo.value.port == port
            assert f"127.0.0.1:{port} is already in use" in str(excinfo.value)
        finally:
            service.close()
            occupier.close()

    def test_metrics_endpoint_collision_is_typed_too(self):
        occupier = socket.create_server(("127.0.0.1", 0))
        port = occupier.getsockname()[1]
        service = SurgeService([make_spec("q")])
        try:
            server = SurgeServer(
                service, host="127.0.0.1", port=0, metrics_port=port
            )
            with pytest.raises(EndpointInUseError) as excinfo:
                server.start_background()
            assert excinfo.value.kind == "metrics"
        finally:
            service.close()
            occupier.close()

    def test_cli_serve_exits_1_with_listen_advice(self, tmp_path, capsys):
        from repro.cli import main

        occupier = socket.create_server(("127.0.0.1", 0))
        port = occupier.getsockname()[1]
        queries_path = tmp_path / "queries.json"
        queries_path.write_text(
            '[{"id": "q", "rect": [1.5, 1.5], "window": 8, "backend": "python"}]'
        )
        try:
            code = main(
                [
                    "serve",
                    "--listen",
                    f"127.0.0.1:{port}",
                    "--queries",
                    str(queries_path),
                ]
            )
        finally:
            occupier.close()
        assert code == 1
        err = capsys.readouterr().err
        assert "already in use" in err
        assert "--listen" in err  # the advice names the override
