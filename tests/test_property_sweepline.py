"""Property-based tests: SL-CSPOT agrees with exhaustive candidate enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import burst_score
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.primitives import Rect

coordinate = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)
size = st.floats(min_value=0.1, max_value=3.0, allow_nan=False)
weight = st.floats(min_value=0.1, max_value=20.0, allow_nan=False)
alpha_values = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)


@st.composite
def labeled_rects(draw, max_rects=8):
    count = draw(st.integers(min_value=1, max_value=max_rects))
    rects = []
    for _ in range(count):
        x = draw(coordinate)
        y = draw(coordinate)
        w = draw(size)
        h = draw(size)
        rects.append(
            LabeledRect(x, y, x + w, y + h, draw(weight), draw(st.booleans()))
        )
    return rects


def brute_force_best_score(rects, alpha, wc, wp):
    """Evaluate the burst score at every candidate point of the arrangement."""
    xs = sorted({r.min_x for r in rects} | {r.max_x for r in rects})
    ys = sorted({r.min_y for r in rects} | {r.max_y for r in rects})
    candidates_x = list(xs) + [(a + b) / 2.0 for a, b in zip(xs, xs[1:])]
    candidates_y = list(ys) + [(a + b) / 2.0 for a, b in zip(ys, ys[1:])]
    best = 0.0
    for x in candidates_x:
        for y in candidates_y:
            fc = sum(
                r.weight / wc
                for r in rects
                if r.in_current and r.min_x <= x <= r.max_x and r.min_y <= y <= r.max_y
            )
            fp = sum(
                r.weight / wp
                for r in rects
                if not r.in_current and r.min_x <= x <= r.max_x and r.min_y <= y <= r.max_y
            )
            best = max(best, burst_score(fc, fp, alpha))
    return best


class TestSweepMatchesBruteForce:
    @given(rects=labeled_rects(), alpha=alpha_values)
    @settings(max_examples=60, deadline=None)
    def test_best_score_matches(self, rects, alpha):
        result = sweep_bursty_point(rects, alpha, 1.0, 1.0)
        expected = brute_force_best_score(rects, alpha, 1.0, 1.0)
        assert abs(result.score - expected) <= 1e-6 * max(1.0, expected)

    @given(rects=labeled_rects(), alpha=alpha_values)
    @settings(max_examples=40, deadline=None)
    def test_reported_point_achieves_reported_score(self, rects, alpha):
        result = sweep_bursty_point(rects, alpha, 1.0, 1.0)
        point = result.point
        fc = sum(
            r.weight
            for r in rects
            if r.in_current and r.min_x <= point.x <= r.max_x and r.min_y <= point.y <= r.max_y
        )
        fp = sum(
            r.weight
            for r in rects
            if not r.in_current
            and r.min_x <= point.x <= r.max_x
            and r.min_y <= point.y <= r.max_y
        )
        assert abs(fc - result.fc) <= 1e-6 * max(1.0, fc)
        assert abs(fp - result.fp) <= 1e-6 * max(1.0, fp)
        assert abs(burst_score(fc, fp, alpha) - result.score) <= 1e-6 * max(1.0, result.score)

    @given(rects=labeled_rects(), alpha=alpha_values)
    @settings(max_examples=40, deadline=None)
    def test_window_lengths_scale_scores(self, rects, alpha):
        unit = sweep_bursty_point(rects, alpha, 1.0, 1.0)
        halved = sweep_bursty_point(rects, alpha, 2.0, 2.0)
        assert abs(unit.score - 2.0 * halved.score) <= 1e-6 * max(1.0, unit.score)

    @given(rects=labeled_rects(max_rects=6), alpha=alpha_values)
    @settings(max_examples=40, deadline=None)
    def test_bounded_search_never_beats_unbounded(self, rects, alpha):
        bounds = Rect(2.0, 2.0, 6.0, 6.0)
        unbounded = sweep_bursty_point(rects, alpha, 1.0, 1.0)
        bounded = sweep_bursty_point(rects, alpha, 1.0, 1.0, bounds=bounds)
        if bounded is not None:
            assert bounded.score <= unbounded.score + 1e-9
            assert bounds.contains_point(bounded.point)
