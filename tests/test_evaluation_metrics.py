"""Unit tests for timing summaries and Figure 8 metrics."""

import pytest

from repro.evaluation.metrics import (
    TimingSummary,
    processing_time_per_hour_of_stream,
    summarize_times,
)


class TestSummarizeTimes:
    def test_empty_input(self):
        summary = summarize_times([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.total == 0.0

    def test_basic_statistics(self):
        summary = summarize_times([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 4.0
        assert summary.total == pytest.approx(10.0)

    def test_p95_upper_tail(self):
        times = [0.001] * 99 + [1.0]
        summary = summarize_times(times)
        assert summary.p95 <= 1.0
        assert summary.p95 >= 0.001

    def test_mean_micros(self):
        summary = summarize_times([1e-6, 3e-6])
        assert summary.mean_micros == pytest.approx(2.0)

    def test_objects_per_second(self):
        summary = summarize_times([0.01, 0.01])
        assert summary.objects_per_second == pytest.approx(100.0)

    def test_objects_per_second_when_mean_zero(self):
        summary = summarize_times([])
        assert summary.objects_per_second == float("inf")


class TestProcessingTimePerStreamHour:
    def test_basic_conversion(self):
        # 10 seconds of processing for 2 hours of stream = 5 s per stream-hour.
        assert processing_time_per_hour_of_stream(10.0, 7200.0) == pytest.approx(5.0)

    def test_degenerate_stream_span(self):
        assert processing_time_per_hour_of_stream(1.0, 0.0) == float("inf")
