"""Property-based tests for the burst score function and its lemmas."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import WindowAccumulator, burst_score

scores = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
alphas = st.floats(min_value=0.0, max_value=0.999, allow_nan=False)
weights = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


class TestScoreBounds:
    @given(fc=scores, fp=scores, alpha=alphas)
    def test_score_is_non_negative(self, fc, fp, alpha):
        assert burst_score(fc, fp, alpha) >= 0.0

    @given(fc=scores, fp=scores, alpha=alphas)
    def test_static_upper_bound_lemma2(self, fc, fp, alpha):
        """Lemma 2: S(p) <= f(p, Wc) — the static bound is always valid."""
        assert burst_score(fc, fp, alpha) <= fc + 1e-9 * max(1.0, fc)

    @given(fc=scores, fp=scores, alpha=alphas)
    def test_removing_past_mass_never_decreases_score(self, fc, fp, alpha):
        assert burst_score(fc, 0.0, alpha) >= burst_score(fc, fp, alpha) - 1e-12

    @given(fc=scores, fp=scores, extra=scores, alpha=alphas)
    def test_adding_current_mass_never_decreases_score(self, fc, fp, extra, alpha):
        assert burst_score(fc + extra, fp, alpha) >= burst_score(fc, fp, alpha) - 1e-9

    @given(fc=scores, fp=scores, alpha=alphas)
    def test_score_between_significance_and_current_mass(self, fc, fp, alpha):
        """(1-alpha)*fc <= S <= fc — the containment Lemma 5 relies on."""
        score = burst_score(fc, fp, alpha)
        assert score >= (1.0 - alpha) * fc - 1e-9 * max(1.0, fc)
        assert score <= fc + 1e-9 * max(1.0, fc)


class TestSubadditivity:
    @given(
        fc1=scores, fp1=scores, fc2=scores, fp2=scores, alpha=alphas
    )
    def test_lemma6_subadditivity_over_disjoint_regions(self, fc1, fp1, fc2, fp2, alpha):
        """Lemma 6: S(r1 ∪ r2) <= S(r1) + S(r2) for disjoint r1, r2.

        For disjoint regions the window scores add, so this is a statement
        about the score function itself.
        """
        union = burst_score(fc1 + fc2, fp1 + fp2, alpha)
        separate = burst_score(fc1, fp1, alpha) + burst_score(fc2, fp2, alpha)
        assert union <= separate + 1e-6 * max(1.0, separate)

    @given(fc1=scores, fp1=scores, fc2=scores, fp2=scores, alpha=alphas)
    def test_lemma5_containment(self, fc1, fp1, fc2, fp2, alpha):
        """Lemma 5: S(r2) >= (1 - alpha) * S(r1) when r1 ⊆ r2.

        Containment means fc2 >= fc1 (and fp2 >= fp1, which only matters for
        the burstiness term the lemma discards).
        """
        big_fc = fc1 + fc2
        big_fp = fp1 + fp2
        small = burst_score(fc1, fp1, alpha)
        big = burst_score(big_fc, big_fp, alpha)
        assert big >= (1.0 - alpha) * small - 1e-6 * max(1.0, small)


class TestAccumulatorConsistency:
    @given(
        entries=st.lists(
            st.tuples(weights, st.sampled_from(["current", "past"])), max_size=30
        ),
        alpha=alphas,
        window=st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_accumulator_matches_direct_computation(self, entries, alpha, window):
        accumulator = WindowAccumulator()
        current_total = 0.0
        past_total = 0.0
        for weight, label in entries:
            if label == "current":
                accumulator.apply_new(weight, window)
                current_total += weight
            else:
                accumulator.apply_new(weight, window)
                accumulator.apply_grown(weight, window, window)
                past_total += weight
        expected = burst_score(current_total / window, past_total / window, alpha)
        assert abs(accumulator.score(alpha) - expected) <= 1e-6 * max(1.0, expected)

    @given(
        entries=st.lists(weights, min_size=1, max_size=20),
        window=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50)
    def test_full_lifecycle_returns_to_empty(self, entries, window):
        accumulator = WindowAccumulator()
        for weight in entries:
            accumulator.apply_new(weight, window)
        for weight in entries:
            accumulator.apply_grown(weight, window, window)
        for weight in entries:
            accumulator.apply_expired(weight, window)
        assert accumulator.is_empty
        assert abs(accumulator.fc) < 1e-6
        assert abs(accumulator.fp) < 1e-6
