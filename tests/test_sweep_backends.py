"""Backend parity and selection tests for the pluggable SL-CSPOT kernels.

The centrepiece is a randomized property test over ≥200 seeded rectangle
snapshots — including degenerate, edge-aligned and zero-area cases — that
asserts the ``numpy`` and ``python`` backends return identical best scores
and that every reported argmax point actually achieves its reported score,
cross-checked against the brute-force arrangement scorer.
"""

from __future__ import annotations

import random

import pytest

from tests.helpers import make_objects
from repro.core.burst import burst_score
from repro.core.sweep_backends import (
    AdaptiveSweepBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.primitives import Rect

HAVE_NUMPY = "numpy" in available_backends()

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend not available"
)

#: Score agreement tolerance between backends: the numpy kernel evaluates
#: slabs through prefix sums whose summation order differs from the per-slab
#: accumulation of the python kernel, so the last few ulps may differ.
PARITY_RTOL = 1e-9

#: Looser tolerance against the brute-force scorer (independent arithmetic).
BRUTE_RTOL = 1e-6


def random_snapshot(rng: random.Random) -> list[LabeledRect]:
    """One random rectangle snapshot, biased towards degenerate structure.

    Four flavours rotate through the seeds: continuous coordinates, lattice
    coordinates (forcing shared/collinear edges), zero-area degenerate
    rectangles mixed in, and duplicated rectangles.
    """
    flavour = rng.randrange(4)
    count = rng.randint(1, 24)
    rects: list[LabeledRect] = []
    for _ in range(count):
        if flavour == 1:
            # Integer lattice: many rectangles share edge coordinates exactly.
            x = float(rng.randint(0, 6))
            y = float(rng.randint(0, 6))
            w = float(rng.randint(0, 3))
            h = float(rng.randint(0, 3))
        elif flavour == 2 and rng.random() < 0.4:
            # Degenerate: zero width and/or height (points and segments).
            x = rng.uniform(0.0, 8.0)
            y = rng.uniform(0.0, 8.0)
            w = 0.0 if rng.random() < 0.7 else rng.uniform(0.0, 2.0)
            h = 0.0
        else:
            x = rng.uniform(0.0, 8.0)
            y = rng.uniform(0.0, 8.0)
            w = rng.uniform(0.1, 3.0)
            h = rng.uniform(0.1, 3.0)
        weight = rng.uniform(0.1, 20.0)
        rects.append(LabeledRect(x, y, x + w, y + h, weight, rng.random() < 0.7))
    if flavour == 3 and len(rects) > 1:
        rects.extend(rects[: len(rects) // 2])  # exact duplicates
    return rects


def brute_force_best_score(rects, alpha, wc, wp):
    """Max burst score over every candidate point of the arrangement."""
    xs = sorted({r.min_x for r in rects} | {r.max_x for r in rects})
    ys = sorted({r.min_y for r in rects} | {r.max_y for r in rects})
    candidates_x = list(xs) + [(a + b) / 2.0 for a, b in zip(xs, xs[1:])]
    candidates_y = list(ys) + [(a + b) / 2.0 for a, b in zip(ys, ys[1:])]
    best = 0.0
    for x in candidates_x:
        for y in candidates_y:
            fc = sum(
                r.weight / wc
                for r in rects
                if r.in_current and r.min_x <= x <= r.max_x and r.min_y <= y <= r.max_y
            )
            fp = sum(
                r.weight / wp
                for r in rects
                if not r.in_current
                and r.min_x <= x <= r.max_x
                and r.min_y <= y <= r.max_y
            )
            best = max(best, burst_score(fc, fp, alpha))
    return best


def score_at_point(rects, point, alpha, wc, wp):
    """Direct burst score of ``point`` by summation over covering rectangles."""
    fc = sum(
        r.weight / wc
        for r in rects
        if r.in_current
        and r.min_x <= point.x <= r.max_x
        and r.min_y <= point.y <= r.max_y
    )
    fp = sum(
        r.weight / wp
        for r in rects
        if not r.in_current
        and r.min_x <= point.x <= r.max_x
        and r.min_y <= point.y <= r.max_y
    )
    return burst_score(fc, fp, alpha), fc, fp


def close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


@needs_numpy
class TestBackendParity:
    def test_randomized_parity_and_brute_force_crosscheck(self):
        from repro.core.sweep_backends.numpy_backend import NumpySweepBackend

        python = get_backend("python")
        numpy_variants = {
            "numpy": get_backend("numpy"),
            "numpy-cumsum": NumpySweepBackend(strategy="cumsum"),
        }
        checked = 0
        brute_checked = 0
        for seed in range(220):
            rng = random.Random(seed)
            rects = random_snapshot(rng)
            alpha = rng.choice([0.0, 0.3, 0.5, 0.9, 0.95])
            wc = rng.choice([1.0, 2.0, 20.0])
            wp = rng.choice([1.0, 2.0, 20.0])

            py = python.sweep(rects, alpha, wc, wp)
            results = {"python": py}
            for label, backend in numpy_variants.items():
                results[label] = backend.sweep(rects, alpha, wc, wp)

            for label, nu in results.items():
                # Identical best scores (up to prefix-sum rounding).
                assert close(py.score, nu.score, PARITY_RTOL), (
                    f"seed {seed}: python={py.score!r} {label}={nu.score!r}"
                )
                assert nu.rectangles_swept == len(rects)
                # Each backend's argmax point must actually achieve its score.
                direct, fc, fp = score_at_point(rects, nu.point, alpha, wc, wp)
                assert close(nu.score, direct, BRUTE_RTOL)
                assert close(nu.fc, fc, BRUTE_RTOL)
                assert close(nu.fp, fp, BRUTE_RTOL)

            # Cross-check the optimum against exhaustive candidate
            # enumeration on the smaller snapshots (the scorer is cubic).
            if len(rects) <= 12:
                expected = brute_force_best_score(rects, alpha, wc, wp)
                assert close(py.score, expected, BRUTE_RTOL)
                brute_checked += 1
            checked += 1
        assert checked >= 200
        assert brute_checked >= 50

    def test_numpy_rejects_unknown_strategy(self):
        from repro.core.sweep_backends.numpy_backend import NumpySweepBackend

        with pytest.raises(ValueError, match="strategy"):
            NumpySweepBackend(strategy="fft")

    def test_parity_with_bounds_clipping(self):
        bounds = Rect(2.0, 2.0, 6.0, 6.0)
        for seed in range(60):
            rng = random.Random(1000 + seed)
            rects = random_snapshot(rng)
            py = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=bounds, backend="python")
            nu = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=bounds, backend="numpy")
            assert (py is None) == (nu is None)
            if py is not None:
                assert close(py.score, nu.score, PARITY_RTOL)
                assert bounds.contains_point(py.point)
                assert bounds.contains_point(nu.point)

    def test_detectors_agree_across_backends(self):
        from tests.helpers import feed, scores_close
        from repro.core.cell_cspot import CellCSPOT
        from repro.core.query import SurgeQuery

        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0)
        objects = make_objects(80, seed=31, extent=6.0)
        results = {}
        for backend in ("python", "numpy"):
            detector = CellCSPOT(query, backend=backend)
            feed(detector, objects, query.window_length)
            results[backend] = detector.current_score()
        assert scores_close(results["python"], results["numpy"])


class TestBackendSelection:
    def test_available_backends_always_include_python_and_auto(self):
        names = available_backends()
        assert "python" in names
        assert "auto" in names

    def test_get_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            get_backend("fortran")

    def test_resolve_backend_passes_instances_through(self):
        instance = get_backend("python")
        assert resolve_backend(instance) is instance

    def test_resolve_backend_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "python")
        assert resolve_backend(None).name == "python"
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "")
        assert resolve_backend(None).name == "auto"

    @needs_numpy
    def test_adaptive_backend_dispatches_by_size(self):
        adaptive = AdaptiveSweepBackend(numpy_threshold=4)
        small = [LabeledRect(0, 0, 1, 1, 1.0, True)]
        large = [
            LabeledRect(i * 0.1, 0, i * 0.1 + 1, 1, 1.0, True) for i in range(10)
        ]
        # Both paths must produce the same optimum on the same input.
        for rects in (small, large):
            auto = adaptive.sweep(rects, 0.5, 1.0, 1.0)
            reference = get_backend("python").sweep(rects, 0.5, 1.0, 1.0)
            assert close(auto.score, reference.score, PARITY_RTOL)

    def test_facade_accepts_backend_names(self):
        rects = [LabeledRect(0, 0, 1, 1, 2.0, True)]
        for name in available_backends():
            result = sweep_bursty_point(rects, 0.5, 1.0, 1.0, backend=name)
            assert result is not None
            assert result.score == pytest.approx(2.0)


class TestMonitorBatching:
    def test_push_many_matches_sequential_push(self):
        from repro.core.monitor import SurgeMonitor
        from repro.core.query import SurgeQuery

        query = SurgeQuery(
            rect_width=1.0, rect_height=1.0, window_length=20.0, k=3
        )
        objects = make_objects(90, seed=41, extent=6.0)
        sequential = SurgeMonitor(query, algorithm="kccs")
        batched = SurgeMonitor(query, algorithm="kccs")
        last = None
        for obj in objects:
            last = sequential.push(obj)
        batch_result = batched.push_many(objects)
        assert sequential.objects_seen == batched.objects_seen == len(objects)
        assert (last is None) == (batch_result is None)
        if last is not None:
            assert batch_result.score == pytest.approx(last.score)
        top_sequential = [r.score for r in sequential.top_k()]
        top_batched = [r.score for r in batched.top_k()]
        assert top_batched == pytest.approx(top_sequential)

    def test_make_detector_threads_backend(self):
        from repro.core.monitor import make_detector
        from repro.core.query import SurgeQuery

        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0)
        detector = make_detector("ccs", query, backend="python")
        assert detector.sweep_backend.name == "python"
        # Grid approximations perform no sweep; the option is ignored.
        gaps = make_detector("gaps", query, backend="python")
        assert not hasattr(gaps, "sweep_backend")

    def test_cli_backend_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.io import write_csv_stream
        from repro.streams.objects import SpatialObject

        # Stream written directly (not via the generate command) so this
        # also runs on the numpy-free install.
        stream_path = tmp_path / "stream.csv"
        write_csv_stream(
            stream_path,
            [
                SpatialObject(
                    x=obj.x / 100.0,
                    y=obj.y / 100.0,
                    timestamp=obj.timestamp * 20.0,
                    weight=obj.weight,
                    object_id=obj.object_id,
                )
                for obj in make_objects(150, seed=13)
            ],
        )
        capsys.readouterr()
        outputs = {}
        for backend in ("python",) + (("numpy",) if HAVE_NUMPY else ()):
            code = main(
                [
                    "run",
                    str(stream_path),
                    "--algorithm",
                    "ccs",
                    "--backend",
                    backend,
                    "--rect",
                    "0.01",
                    "0.006",
                    "--window",
                    "300",
                    "--report-every",
                    "50",
                ]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        if HAVE_NUMPY:
            # Same stream, same reported scores — regardless of kernel (the
            # argmax point may legitimately differ between backends on ties).
            import re

            scores = {
                backend: [float(s) for s in re.findall(r"score=([0-9.]+)", text)]
                for backend, text in outputs.items()
            }
            assert scores["python"], "expected at least one reported region"
            assert scores["numpy"] == pytest.approx(scores["python"])


class TestCrossoverOverride:
    """The auto backend's python→numpy crossover (REPRO_SWEEP_CROSSOVER)."""

    def test_default_threshold(self, monkeypatch):
        from repro.core.sweep_backends import (
            AUTO_NUMPY_THRESHOLD,
            AdaptiveSweepBackend,
            CROSSOVER_ENV_VAR,
        )

        monkeypatch.delenv(CROSSOVER_ENV_VAR, raising=False)
        assert AdaptiveSweepBackend().numpy_threshold == AUTO_NUMPY_THRESHOLD

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.core.sweep_backends import AdaptiveSweepBackend, CROSSOVER_ENV_VAR

        monkeypatch.setenv(CROSSOVER_ENV_VAR, "64")
        assert AdaptiveSweepBackend().numpy_threshold == 64

    def test_explicit_argument_wins_over_env_var(self, monkeypatch):
        from repro.core.sweep_backends import AdaptiveSweepBackend, CROSSOVER_ENV_VAR

        monkeypatch.setenv(CROSSOVER_ENV_VAR, "64")
        assert AdaptiveSweepBackend(numpy_threshold=300).numpy_threshold == 300

    @pytest.mark.parametrize("bogus", ["abc", "19.5", "0", "-3", "1e3"])
    def test_invalid_values_rejected(self, monkeypatch, bogus):
        from repro.core.sweep_backends import AdaptiveSweepBackend, CROSSOVER_ENV_VAR

        monkeypatch.setenv(CROSSOVER_ENV_VAR, bogus)
        with pytest.raises(ValueError):
            AdaptiveSweepBackend()

    def test_resolve_crossover_whitespace_falls_back(self, monkeypatch):
        from repro.core.sweep_backends import (
            AUTO_NUMPY_THRESHOLD,
            CROSSOVER_ENV_VAR,
            resolve_crossover,
        )

        monkeypatch.setenv(CROSSOVER_ENV_VAR, "   ")
        assert resolve_crossover() == AUTO_NUMPY_THRESHOLD

    @needs_numpy
    def test_crossover_controls_kernel_selection(self, monkeypatch):
        from repro.core.sweep_backends import AdaptiveSweepBackend, CROSSOVER_ENV_VAR

        monkeypatch.setenv(CROSSOVER_ENV_VAR, "3")
        backend = AdaptiveSweepBackend()
        rects = [
            LabeledRect(float(i), 0.0, float(i) + 1.5, 1.0, 1.0, True)
            for i in range(4)
        ]
        # 4 rects >= crossover 3: the numpy kernel serves the sweep; its
        # answer must match the pure-python kernel's bit for bit.
        from repro.core.sweep_backends import PythonSweepBackend

        auto_result = backend.sweep(rects, 0.5, 10.0, 10.0)
        python_result = PythonSweepBackend().sweep(rects, 0.5, 10.0, 10.0)
        assert auto_result.score == pytest.approx(python_result.score, rel=1e-12)
