"""Disorder-tolerant ingestion: the bit-identity property and its edges.

The tier's whole contract (``SurgeService(max_lateness=...)`` +
:class:`~repro.streams.watermark.WatermarkReorderBuffer`) is that *bounded
disorder is invisible*: replaying a stream whose arrivals are displaced by
at most ``max_lateness`` produces results **bit-identical** to replaying the
pre-sorted stream — for every detector, execution plan and executor, with
nothing dropped.  This module locks that with a Hypothesis property plus a
deterministic full cross of detectors × plans, then covers the edges around
it: strict-mode fail-fast (:class:`~repro.streams.windows.OutOfOrderError`),
poison-record quarantine (counted, spilled, surfaced via ``on_bad_record``),
duplicate ids across chunk boundaries, subscriber-fault isolation, and
checkpoint/restore with held-back events in the buffer.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import DETECTOR_NAMES
from repro.core.query import SurgeQuery
from repro.service import QuerySpec, SurgeService
from repro.state import CheckpointPolicy, SnapshotError
from repro.state.recovery import read_manifest
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject
from repro.streams.watermark import IngestStats
from repro.streams.windows import OutOfOrderError

MAX_LATENESS = 2.0


def make_clean(count: int, seed: int) -> list[SpatialObject]:
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(count):
        t += rng.uniform(0.1, 0.6)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 5.0),
                object_id=index,
                attributes={"keywords": (rng.choice(("concert", "parade")),)},
            )
        )
    return objects


def make_specs(algorithm: str) -> list[QuerySpec]:
    k = 3 if algorithm.startswith("k") else 1
    query = SurgeQuery(1.5, 1.5, window_length=8.0, alpha=0.5, k=k)
    return [
        QuerySpec(
            query_id="kw", query=query, algorithm=algorithm,
            keyword="concert", backend="python",
        ),
        QuerySpec(
            query_id="all", query=query, algorithm=algorithm, backend="python",
        ),
    ]


def replay(
    specs,
    arrivals,
    *,
    chunk_size: int = 8,
    max_lateness: float = 0.0,
    shared_plan: bool = True,
    executor: str = "serial",
    shards: int = 1,
):
    """Run ``arrivals`` through a fresh service; return (results, ingest)."""
    with SurgeService(
        specs,
        shared_plan=shared_plan,
        executor=executor,
        shards=shards,
        max_lateness=max_lateness,
    ) as service:
        for _ in service.run(iter(arrivals), chunk_size=chunk_size):
            pass
        return service.results(), service.ingest_stats()


def assert_tolerant_matches_strict(
    injector: FaultInjector,
    algorithm: str,
    *,
    max_lateness: float,
    chunk_size: int = 8,
    shared_plan: bool = True,
    executor: str = "serial",
    shards: int = 1,
) -> IngestStats:
    expected, _ = replay(
        make_specs(algorithm),
        injector.reference(),
        chunk_size=chunk_size,
        shared_plan=shared_plan,
        executor=executor,
        shards=shards,
    )
    got, ingest = replay(
        make_specs(algorithm),
        injector.materialize(),
        chunk_size=chunk_size,
        max_lateness=max_lateness,
        shared_plan=shared_plan,
        executor=executor,
        shards=shards,
    )
    assert ingest.late_dropped == 0
    assert got == expected  # RegionResult equality is exact, not approximate
    return ingest


# ---------------------------------------------------------------------------
# The bit-identity property
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    count=st.integers(min_value=10, max_value=50),
    disorder_fraction=st.floats(min_value=0.05, max_value=0.6),
    algorithm=st.sampled_from(DETECTOR_NAMES),
    shared_plan=st.booleans(),
    chunk_size=st.integers(min_value=1, max_value=16),
)
def test_bounded_disorder_is_bit_invisible(
    seed, count, disorder_fraction, algorithm, shared_plan, chunk_size
):
    injector = FaultInjector(
        make_clean(count, seed),
        seed=seed,
        disorder_fraction=disorder_fraction,
        max_disorder=MAX_LATENESS,
    )
    assert_tolerant_matches_strict(
        injector,
        algorithm,
        max_lateness=MAX_LATENESS,
        chunk_size=chunk_size,
        shared_plan=shared_plan,
    )


@pytest.mark.parametrize("algorithm", DETECTOR_NAMES)
@pytest.mark.parametrize("shared_plan", [True, False])
def test_every_detector_and_plan_absorbs_ten_percent_disorder(
    algorithm, shared_plan
):
    injector = FaultInjector(
        make_clean(80, seed=17),
        seed=17,
        disorder_fraction=0.10,
        max_disorder=MAX_LATENESS,
    )
    ingest = assert_tolerant_matches_strict(
        injector, algorithm, max_lateness=MAX_LATENESS, shared_plan=shared_plan
    )
    assert ingest.reordered > 0  # the case was non-trivial


@pytest.mark.parametrize(
    "executor, shards", [("serial", 1), ("thread", 2), ("process", 2)]
)
def test_disorder_tolerance_across_executors(executor, shards):
    injector = FaultInjector(
        make_clean(60, seed=23),
        seed=23,
        disorder_fraction=0.15,
        max_disorder=MAX_LATENESS,
    )
    assert_tolerant_matches_strict(
        injector,
        "ccs",
        max_lateness=MAX_LATENESS,
        executor=executor,
        shards=shards,
    )


# ---------------------------------------------------------------------------
# Strict mode stays fail-fast
# ---------------------------------------------------------------------------
class TestStrictMode:
    def test_run_raises_typed_error_on_disorder(self):
        clean = make_clean(20, seed=3)
        arrivals = list(clean)
        arrivals[5], arrivals[6] = arrivals[6], arrivals[5]
        with SurgeService(make_specs("ccs")) as service:
            with pytest.raises(OutOfOrderError) as excinfo:
                for _ in service.run(iter(arrivals), chunk_size=4):
                    pass
        error = excinfo.value
        assert isinstance(error, ValueError)  # backward-compatible type
        assert error.object_id == arrivals[6].object_id
        assert error.timestamp == arrivals[6].timestamp
        assert error.last_time == arrivals[5].timestamp

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError, match="max_lateness"):
            SurgeService(make_specs("ccs"), max_lateness=-1.0)

    def test_lateness_zero_with_screen_keeps_strict_ordering(self):
        # quarantine_dir alone activates the tolerant tier (screening) but
        # must not silently start reordering.
        clean = make_clean(12, seed=5)
        arrivals = list(clean)
        arrivals[3], arrivals[4] = arrivals[4], arrivals[3]
        with SurgeService(
            make_specs("ccs"), on_bad_record=lambda record, reason: None
        ) as service:
            with pytest.raises(OutOfOrderError, match="strict mode"):
                for _ in service.run(iter(arrivals), chunk_size=4):
                    pass


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_poison_counted_spilled_and_surfaced(self, tmp_path):
        injector = FaultInjector(
            make_clean(60, seed=29),
            seed=29,
            disorder_fraction=0.1,
            max_disorder=MAX_LATENESS,
            poison_fraction=0.05,
            poison_kinds=("nan_timestamp", "raw_dict", "bad_keywords"),
        )
        seen = []
        quarantine_dir = tmp_path / "quarantine"
        with SurgeService(
            make_specs("ccs"),
            max_lateness=MAX_LATENESS,
            on_bad_record=lambda record, reason: seen.append((record, reason)),
            quarantine_dir=quarantine_dir,
        ) as service:
            for _ in service.run(iter(injector), chunk_size=8):
                pass
            ingest = service.ingest_stats()
        assert ingest.quarantined == injector.poisoned > 0
        assert len(seen) == injector.poisoned
        lines = (quarantine_dir / "quarantine.jsonl").read_text().splitlines()
        assert len(lines) == injector.poisoned
        for line in lines:
            record = json.loads(line)
            assert record["reason"]
            assert "record" in record

    def test_results_unaffected_by_poison(self):
        injector = FaultInjector(
            make_clean(50, seed=31),
            seed=31,
            poison_fraction=0.1,
            poison_kinds=("nan_timestamp", "nan_x", "inf_weight"),
        )
        expected, _ = replay(make_specs("ccs"), injector.reference())
        got, ingest = replay(
            make_specs("ccs"),
            injector.materialize(),
            max_lateness=MAX_LATENESS,
        )
        assert got == expected
        assert ingest.quarantined == injector.poisoned


# ---------------------------------------------------------------------------
# Duplicate object ids
# ---------------------------------------------------------------------------
class TestDuplicateIds:
    def test_duplicates_processed_as_distinct_arrivals(self):
        clean = make_clean(40, seed=37)
        injector = FaultInjector(
            clean, seed=37, duplicate_fraction=0.15, duplicate_delay=0.5
        )
        arrivals = injector.materialize()
        assert injector.duplicates > 0
        # Ground truth: a strict replay of the same arrival multiset in
        # sorted order — duplicates are real arrivals, not noise to dedup.
        reference = sorted(arrivals, key=lambda o: (o.timestamp, o.object_id))
        expected, _ = replay(make_specs("ccs"), reference)
        got, ingest = replay(
            make_specs("ccs"), arrivals, max_lateness=MAX_LATENESS
        )
        assert got == expected
        assert ingest.duplicates_seen == injector.duplicates

    def test_duplicate_straddling_a_chunk_boundary(self):
        clean = make_clean(8, seed=41)
        # The duplicate of the 4th object arrives right after it: with
        # chunk_size=4 the original closes chunk 0 and the duplicate opens
        # chunk 1.
        duplicate = SpatialObject(
            x=clean[3].x,
            y=clean[3].y,
            timestamp=clean[3].timestamp + 0.01,
            weight=clean[3].weight,
            object_id=clean[3].object_id,
        )
        arrivals = clean[:4] + [duplicate] + clean[4:]
        expected, _ = replay(make_specs("ccs"), arrivals, chunk_size=4)
        got, ingest = replay(
            make_specs("ccs"), arrivals, chunk_size=4, max_lateness=MAX_LATENESS
        )
        assert got == expected
        assert ingest.duplicates_seen == 1


# ---------------------------------------------------------------------------
# Subscriber-fault isolation
# ---------------------------------------------------------------------------
class TestSubscriberIsolation:
    def test_failing_subscriber_does_not_starve_the_next(self):
        clean = make_clean(16, seed=43)
        received = []

        def bomb(update):
            raise RuntimeError("subscriber bug")

        with SurgeService(make_specs("ccs")) as service:
            service.bus.subscribe(bomb)
            service.bus.subscribe(received.append)
            for _ in service.run(iter(clean), chunk_size=4):
                pass
            ingest = service.ingest_stats()
            stats = service.stats()
        assert received  # the healthy subscriber kept seeing updates
        assert ingest.subscriber_errors == len(received)
        assert stats.ingest.subscriber_errors == ingest.subscriber_errors


# ---------------------------------------------------------------------------
# Checkpoint / restore with held-back events
# ---------------------------------------------------------------------------
class TestTolerantRecovery:
    CHUNK = 6

    def make_injector(self):
        return FaultInjector(
            make_clean(90, seed=47),
            seed=47,
            disorder_fraction=0.15,
            max_disorder=MAX_LATENESS,
            poison_fraction=0.03,
        )

    def uninterrupted(self):
        injector = self.make_injector()
        return replay(
            make_specs("ccs"),
            injector.materialize(),
            chunk_size=self.CHUNK,
            max_lateness=MAX_LATENESS,
        )

    def crashed_service(self, tmp_path, die_after: int) -> None:
        """Run a doomed service and abandon it mid-stream ("crash")."""
        injector = self.make_injector()
        doomed = SurgeService(
            make_specs("ccs"),
            max_lateness=MAX_LATENESS,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        )
        chunks = 0
        for _ in doomed.run(iter(injector), chunk_size=self.CHUNK):
            chunks += 1
            if chunks >= die_after:
                break
        # No close(): the "crash" discards the in-memory state.

    def test_restore_resumes_bit_identically(self, tmp_path):
        expected, expected_ingest = self.uninterrupted()
        self.crashed_service(tmp_path, die_after=5)
        restored = SurgeService.restore(tmp_path / "ckpt")
        assert restored.max_lateness == MAX_LATENESS
        with restored:
            for _ in restored.run(
                iter(self.make_injector()),
                chunk_size=self.CHUNK,
                start_offset=restored.chunk_offset,
            ):
                pass
            got = restored.results()
            got_ingest = restored.ingest_stats()
        assert got == expected
        assert got_ingest == expected_ingest

    def test_manifest_records_the_ingest_tier(self, tmp_path):
        self.crashed_service(tmp_path, die_after=3)
        manifest = read_manifest(tmp_path / "ckpt")
        assert manifest.ingest is not None
        assert manifest.ingest["max_lateness"] == MAX_LATENESS
        assert manifest.ingest["raw_consumed"] > 0
        assert (tmp_path / "ckpt" / manifest.ingest["snapshot_file"]).exists()

    def test_missing_ingest_snapshot_fails_clearly(self, tmp_path):
        self.crashed_service(tmp_path, die_after=3)
        manifest = read_manifest(tmp_path / "ckpt")
        (tmp_path / "ckpt" / manifest.ingest["snapshot_file"]).unlink()
        with pytest.raises(SnapshotError, match="missing ingest snapshot"):
            SurgeService.restore(tmp_path / "ckpt")

    def test_tolerant_resume_rejects_chunk_offsets(self):
        clean = make_clean(20, seed=53)
        with SurgeService(make_specs("ccs"), max_lateness=MAX_LATENESS) as service:
            with pytest.raises(ValueError, match="raw records, not chunks"):
                for _ in service.run(iter(clean), chunk_size=4, start_offset=1):
                    pass

    def test_resume_stream_shorter_than_offset_fails_clearly(self, tmp_path):
        self.crashed_service(tmp_path, die_after=5)
        restored = SurgeService.restore(tmp_path / "ckpt", attach=False)
        with restored:
            with pytest.raises(ValueError, match="shorter than"):
                for _ in restored.run(
                    iter(make_clean(3, seed=47)),
                    chunk_size=self.CHUNK,
                    start_offset=restored.chunk_offset,
                ):
                    pass
