"""Property-based tests for the sliding-window pair invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.objects import EventKind, SpatialObject
from repro.streams.windows import SlidingWindowPair

gaps = st.lists(
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False), min_size=1, max_size=60
)
window_lengths = st.floats(min_value=1.0, max_value=25.0, allow_nan=False)


def build_stream(gap_list):
    timestamp = 0.0
    objects = []
    for index, gap in enumerate(gap_list):
        timestamp += gap
        objects.append(
            SpatialObject(x=0.0, y=0.0, timestamp=timestamp, weight=1.0, object_id=index)
        )
    return objects


class TestWindowInvariants:
    @given(gap_list=gaps, window=window_lengths)
    @settings(max_examples=60, deadline=None)
    def test_window_contents_match_definition(self, gap_list, window):
        """After each arrival, Wc and Wp contain exactly the objects the paper defines."""
        windows = SlidingWindowPair(window)
        stream = build_stream(gap_list)
        observed: list = []
        for obj in stream:
            windows.observe(obj)
            observed.append(obj)
            t = windows.time
            expected_current = {
                o.object_id for o in observed if t - window < o.timestamp
            }
            expected_past = {
                o.object_id
                for o in observed
                if t - 2 * window < o.timestamp <= t - window
            }
            assert {o.object_id for o in windows.current_window} == expected_current
            assert {o.object_id for o in windows.past_window} == expected_past

    @given(gap_list=gaps, window=window_lengths)
    @settings(max_examples=60, deadline=None)
    def test_every_object_follows_the_lifecycle(self, gap_list, window):
        """Every object emits NEW, then optionally GROWN, then optionally EXPIRED."""
        windows = SlidingWindowPair(window)
        lifecycle: dict[int, list[EventKind]] = {}
        for obj in build_stream(gap_list):
            for event in windows.observe(obj):
                lifecycle.setdefault(event.obj.object_id, []).append(event.kind)
        for event in windows.advance_time(windows.time + 10 * window):
            lifecycle.setdefault(event.obj.object_id, []).append(event.kind)
        for kinds in lifecycle.values():
            assert kinds == [EventKind.NEW, EventKind.GROWN, EventKind.EXPIRED]

    @given(gap_list=gaps, window=window_lengths)
    @settings(max_examples=40, deadline=None)
    def test_event_times_are_monotone(self, gap_list, window):
        windows = SlidingWindowPair(window)
        last_time = float("-inf")
        for obj in build_stream(gap_list):
            for event in windows.observe(obj):
                assert event.time >= last_time
                last_time = event.time

    @given(gap_list=gaps, window=window_lengths)
    @settings(max_examples=40, deadline=None)
    def test_live_count_matches_window_membership(self, gap_list, window):
        windows = SlidingWindowPair(window)
        for obj in build_stream(gap_list):
            windows.observe(obj)
            assert len(windows) == len(windows.current_window) + len(windows.past_window)
