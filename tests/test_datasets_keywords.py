"""Unit tests for keyword-tagged streams (case-study substrate)."""

import pytest

pytest.importorskip("numpy", reason="the synthetic dataset generators need numpy (pip install .[fast])")

from repro.datasets.keywords import (
    DEFAULT_VOCABULARY,
    KeywordEvent,
    attach_keywords,
    filter_by_keyword,
    generate_keyword_stream,
)
from repro.datasets.synthetic import StreamConfig, generate_stream
from repro.geometry.primitives import Rect

EXTENT = Rect(0.0, 0.0, 10.0, 10.0)


def background(n=100, seed=4):
    return generate_stream(
        StreamConfig(extent=EXTENT, n_objects=n, arrival_rate_per_hour=3600.0, seed=seed)
    )


class TestAttachKeywords:
    def test_every_object_gets_a_keyword(self):
        tagged = attach_keywords(background())
        assert all("keywords" in obj.attributes for obj in tagged)
        for obj in tagged:
            (keyword,) = obj.attributes["keywords"]
            assert keyword in DEFAULT_VOCABULARY

    def test_original_objects_not_mutated(self):
        objects = background()
        attach_keywords(objects)
        assert all("keywords" not in obj.attributes for obj in objects)

    def test_custom_vocabulary(self):
        tagged = attach_keywords(background(), vocabulary=("zika",))
        assert all(obj.attributes["keywords"] == ("zika",) for obj in tagged)

    def test_deterministic_for_seed(self):
        a = attach_keywords(background(), seed=3)
        b = attach_keywords(background(), seed=3)
        assert [o.attributes["keywords"] for o in a] == [o.attributes["keywords"] for o in b]


class TestKeywordEvent:
    def test_event_region_covers_two_sigmas(self):
        event = KeywordEvent(
            keyword="concert",
            center_x=5.0,
            center_y=5.0,
            start_time=0.0,
            duration=100.0,
            radius_x=0.5,
            radius_y=0.25,
        )
        assert event.region == Rect(4.0, 4.5, 6.0, 5.5)
        burst = event.to_burst()
        assert burst.center_x == 5.0
        assert burst.duration == 100.0


class TestGenerateKeywordStream:
    def _event(self):
        return KeywordEvent(
            keyword="concert",
            center_x=5.0,
            center_y=5.0,
            start_time=50.0,
            duration=60.0,
            radius_x=0.2,
            radius_y=0.2,
            rate_multiplier=10.0,
        )

    def test_stream_contains_background_and_event_objects(self):
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=150,
            arrival_rate_per_hour=3600.0,
            events=(self._event(),),
            seed=2,
        )
        assert len(stream) > 150
        event_objects = [o for o in stream if o.attributes.get("event") == "concert"]
        assert event_objects
        for obj in event_objects:
            assert 50.0 <= obj.timestamp <= 110.0

    def test_stream_is_sorted(self):
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=100,
            arrival_rate_per_hour=3600.0,
            events=(self._event(),),
            seed=2,
        )
        times = [o.timestamp for o in stream]
        assert times == sorted(times)

    def test_filter_by_keyword_selects_matching_objects(self):
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=200,
            arrival_rate_per_hour=3600.0,
            events=(self._event(),),
            seed=2,
        )
        concert = filter_by_keyword(stream, "concert")
        assert concert
        assert all("concert" in o.attributes["keywords"] for o in concert)
        # Background chatter may also mention "music" etc. but never the
        # missing keyword below.
        assert filter_by_keyword(stream, "not-a-keyword") == []

    def test_object_ids_unique_across_background_and_events(self):
        stream = generate_keyword_stream(
            extent=EXTENT,
            n_background=100,
            arrival_rate_per_hour=3600.0,
            events=(self._event(),),
            seed=2,
        )
        ids = [o.object_id for o in stream]
        assert len(ids) == len(set(ids))
