"""Unit tests for the adapted aG2 baseline."""

import pytest

from tests.helpers import feed, make_objects, scores_close
from repro.baselines.ag2 import AG2Detector, DEFAULT_CELL_SCALE
from repro.core.cell_cspot import CellCSPOT
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


def obj(x, y, timestamp, weight=1.0, object_id=0):
    return SpatialObject(x=x, y=y, timestamp=timestamp, weight=weight, object_id=object_id)


class TestConstruction:
    def test_default_cell_scale_is_ten(self, small_query):
        detector = AG2Detector(small_query)
        assert detector.cell_scale == DEFAULT_CELL_SCALE
        assert detector.grid.cell_width == pytest.approx(10.0 * small_query.rect_width)

    def test_invalid_scale_rejected(self, small_query):
        with pytest.raises(ValueError):
            AG2Detector(small_query, cell_scale=0.5)

    def test_no_objects_no_result(self, small_query):
        assert AG2Detector(small_query).result() is None


class TestOverlapGraph:
    def test_overlapping_rectangles_become_neighbours(self, small_query):
        detector = AG2Detector(small_query)
        feed(
            detector,
            [obj(1.0, 1.0, 0.0, 1.0, 0), obj(1.5, 1.5, 0.1, 1.0, 1)],
            small_query.window_length,
        )
        assert detector.total_graph_edges == 2  # one undirected edge stored twice

    def test_disjoint_rectangles_have_no_edges(self, small_query):
        detector = AG2Detector(small_query)
        feed(
            detector,
            [obj(1.0, 1.0, 0.0, 1.0, 0), obj(7.0, 7.0, 0.1, 1.0, 1)],
            small_query.window_length,
        )
        assert detector.total_graph_edges == 0

    def test_expiration_removes_graph_nodes(self, small_query):
        detector = AG2Detector(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in [obj(1.0, 1.0, 0.0, 1.0, 0), obj(1.2, 1.2, 0.1, 1.0, 1)]:
            for event in windows.observe(spatial):
                detector.process(event)
        for event in windows.advance_time(500.0):
            detector.process(event)
        assert detector.total_graph_edges == 0
        assert detector.result() is None


class TestExactness:
    def test_single_object(self, small_query):
        detector = AG2Detector(small_query)
        feed(detector, [obj(1.0, 1.0, 0.0, 6.0)], small_query.window_length)
        assert detector.result().score == pytest.approx(0.3)

    def test_matches_exact_detector_continuously(self, small_query):
        ag2 = AG2Detector(small_query)
        ccs = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in make_objects(60, seed=17, extent=5.0):
            for event in windows.observe(spatial):
                ag2.process(event)
                ccs.process(event)
            assert scores_close(ag2.current_score(), ccs.current_score())

    def test_matches_exact_detector_with_small_cells(self, small_query):
        ag2 = AG2Detector(small_query, cell_scale=2.0)
        ccs = CellCSPOT(small_query)
        windows = SlidingWindowPair(small_query.window_length)
        for spatial in make_objects(50, seed=18, extent=4.0):
            for event in windows.observe(spatial):
                ag2.process(event)
                ccs.process(event)
            assert scores_close(ag2.current_score(), ccs.current_score())

    def test_area_filter(self):
        from repro.geometry.primitives import Rect

        query = SurgeQuery(
            rect_width=1.0,
            rect_height=1.0,
            window_length=10.0,
            area=Rect(0.0, 0.0, 3.0, 3.0),
        )
        detector = AG2Detector(query)
        feed(detector, [obj(1.0, 1.0, 0.0, 1.0, 0), obj(9.0, 9.0, 0.5, 50.0, 1)], 10.0)
        assert detector.result().score == pytest.approx(0.1)
