"""Graceful drain on SIGINT/SIGTERM through real ``repro serve`` processes.

The contract (both serve modes): a termination signal never kills the
process mid-chunk.  File replay finishes the in-flight chunk, stops
consuming, takes the final checkpoint, and prints a ``final results:``
block that is **exactly** a clean run over the consumed prefix — signalled
and unsignalled runs are indistinguishable given the same consumed input.
Network mode stops accepting, settles in-flight work, and exits 0.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets.io import write_csv_stream
from repro.streams.objects import SpatialObject

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
TIMEOUT = 120

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="POSIX signals required",
)


def make_stream_file(path: Path, count: int = 6000) -> list[SpatialObject]:
    rng = random.Random(31)
    keywords = ("concert", "parade")
    objects = [
        SpatialObject(
            x=rng.uniform(0.0, 5.0),
            y=rng.uniform(0.0, 5.0),
            timestamp=float(index),
            weight=rng.uniform(0.5, 5.0),
            object_id=index,
            attributes={"keywords": (keywords[index % 2],)},
        )
        for index in range(count)
    ]
    write_csv_stream(path, objects)
    return objects


def make_queries_file(path: Path) -> None:
    path.write_text(
        json.dumps(
            [
                {"id": "concerts", "keyword": "concert", "rect": [1.0, 1.0],
                 "window": 30, "backend": "python"},
                {"id": "city-wide", "rect": [1.5, 1.5], "window": 25,
                 "backend": "python"},
            ]
        )
    )


def serve_command(*args: str) -> list[str]:
    return [sys.executable, "-u", "-m", "repro.cli", "serve", *args]


def run_env() -> dict:
    return dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")


def final_results_block(stdout: str) -> list[str]:
    lines = stdout.splitlines()
    assert "final results:" in lines, f"no final block in:\n{stdout[-2000:]}"
    return lines[lines.index("final results:") :]


class TestFileReplayDrain:
    def test_sigterm_equals_clean_run_over_consumed_prefix(self, tmp_path):
        stream_path = tmp_path / "stream.csv"
        queries_path = tmp_path / "queries.json"
        objects = make_stream_file(stream_path)
        make_queries_file(queries_path)
        checkpoint_dir = tmp_path / "ckpt"

        victim = subprocess.Popen(
            serve_command(
                str(stream_path),
                "--queries", str(queries_path),
                "--chunk-size", "50",
                "--report-every", "50",
                "--checkpoint-dir", str(checkpoint_dir),
            ),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=run_env(),
        )
        # Wait for the first per-chunk report so the signal provably lands
        # mid-replay, then ask for a graceful drain.
        assert victim.stdout is not None
        deadline = time.monotonic() + TIMEOUT
        saw_report = False
        while time.monotonic() < deadline:
            line = victim.stdout.readline()
            if not line:
                break
            if line.startswith("["):
                saw_report = True
                break
        assert saw_report, "victim produced no report before the timeout"
        victim.send_signal(signal.SIGTERM)
        try:
            remaining_out, err = victim.communicate(timeout=TIMEOUT)
        except subprocess.TimeoutExpired:
            victim.kill()
            raise
        assert victim.returncode == 0, err
        assert "draining: stopping after" in err
        marker = err.split("draining: stopping after", 1)[1]
        chunks_consumed = int(marker.split("chunks", 1)[0].strip())
        consumed = int(marker.split("(", 1)[1].split(" objects", 1)[0])
        assert 0 < consumed < len(objects)
        assert chunks_consumed * 50 == consumed
        drained_block = final_results_block(line + remaining_out)

        # A clean, unsignalled run over exactly the consumed prefix must
        # print the identical final block.
        prefix_path = tmp_path / "prefix.csv"
        write_csv_stream(prefix_path, objects[:consumed])
        clean = subprocess.run(
            serve_command(
                str(prefix_path),
                "--queries", str(queries_path),
                "--chunk-size", "50",
                "--report-every", "50",
            ),
            capture_output=True,
            text=True,
            env=run_env(),
            timeout=TIMEOUT,
        )
        assert clean.returncode == 0, clean.stderr
        assert drained_block == final_results_block(clean.stdout)

        # The drain also left a final checkpoint behind: a --resume of the
        # full stream replays the tail exactly once and completes.
        resumed = subprocess.run(
            serve_command(
                str(stream_path),
                "--queries", str(queries_path),
                "--chunk-size", "50",
                "--report-every", "50",
                "--checkpoint-dir", str(checkpoint_dir),
                "--resume",
            ),
            capture_output=True,
            text=True,
            env=run_env(),
            timeout=TIMEOUT,
        )
        assert resumed.returncode == 0, resumed.stderr
        full = subprocess.run(
            serve_command(
                str(stream_path),
                "--queries", str(queries_path),
                "--chunk-size", "50",
                "--report-every", "50",
            ),
            capture_output=True,
            text=True,
            env=run_env(),
            timeout=TIMEOUT,
        )
        assert full.returncode == 0, full.stderr
        assert final_results_block(resumed.stdout) == final_results_block(
            full.stdout
        )


class TestNetworkServeDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        queries_path = tmp_path / "queries.json"
        make_queries_file(queries_path)
        victim = subprocess.Popen(
            serve_command(
                "--listen", "127.0.0.1:0",
                "--queries", str(queries_path),
            ),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=run_env(),
        )
        assert victim.stdout is not None
        line = victim.stdout.readline()
        assert line.startswith("listening on 127.0.0.1:"), line
        victim.send_signal(signal.SIGTERM)
        try:
            _, err = victim.communicate(timeout=TIMEOUT)
        except subprocess.TimeoutExpired:
            victim.kill()
            raise
        assert victim.returncode == 0, err
        assert "drained:" in err
