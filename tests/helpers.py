"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import random

from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair

#: Relative tolerance for comparing burst scores computed through different
#: code paths (incremental accumulation vs direct summation).
SCORE_RTOL = 1e-6


def make_objects(
    count: int,
    seed: int = 0,
    extent: float = 8.0,
    max_weight: float = 10.0,
    time_step: float = 1.0,
    integer_weights: bool = False,
) -> list[SpatialObject]:
    """A deterministic random stream of spatial objects with increasing timestamps."""
    rng = random.Random(seed)
    objects = []
    for index in range(count):
        weight = (
            float(rng.randint(1, int(max_weight)))
            if integer_weights
            else rng.uniform(0.5, max_weight)
        )
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, extent),
                y=rng.uniform(0.0, extent),
                timestamp=index * time_step,
                weight=weight,
                object_id=index,
            )
        )
    return objects


def feed(detector, objects, window_length, past_window_length=None):
    """Feed objects through a window pair into a detector; return the window pair."""
    windows = SlidingWindowPair(window_length, past_window_length)
    for obj in objects:
        for event in windows.observe(obj):
            detector.process(event)
    return windows


def feed_many(detectors, objects, window_length, past_window_length=None):
    """Feed the same event stream to several detectors; return the window pair."""
    windows = SlidingWindowPair(window_length, past_window_length)
    for obj in objects:
        for event in windows.observe(obj):
            for detector in detectors:
                detector.process(event)
    return windows


def scores_close(a: float, b: float, rtol: float = SCORE_RTOL) -> bool:
    """Whether two burst scores agree up to relative tolerance."""
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))
