"""Unit tests for the detector base classes: results and statistics."""

import pytest

from repro.core.base import DetectorStats, RegionResult
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Point, Rect


class TestRegionResult:
    def test_from_point_uses_theorem1_mapping(self):
        query = SurgeQuery(rect_width=2.0, rect_height=1.0, window_length=10.0)
        result = RegionResult.from_point(Point(5.0, 3.0), score=1.5, query=query)
        # The bursty point is the region's top-right corner; the bottom-left
        # corner sits within a float ulp of ``point - extent``, on whichever
        # side makes closed-region membership match CSPOT coverage exactly
        # (region_covering_point; see tests/test_region_edge_tie.py).
        assert (result.region.max_x, result.region.max_y) == (5.0, 3.0)
        assert result.region.min_x == pytest.approx(3.0)
        assert result.region.min_y == pytest.approx(2.0)
        for min_edge, point_coord, extent in (
            (result.region.min_x, 5.0, 2.0),
            (result.region.min_y, 3.0, 1.0),
        ):
            # Minimality: the edge coordinate is covered, one ulp below not.
            import math

            assert min_edge + extent >= point_coord
            assert math.nextafter(min_edge, -math.inf) + extent < point_coord
        assert result.point == Point(5.0, 3.0)
        assert result.score == 1.5

    def test_from_region_uses_top_right_as_point(self):
        region = Rect(0.0, 0.0, 1.0, 1.0)
        result = RegionResult.from_region(region, score=2.0, fc=2.5, fp=0.5)
        assert result.point == Point(1.0, 1.0)
        assert result.fc == 2.5
        assert result.fp == 0.5


class TestDetectorStats:
    def test_defaults_are_zero(self):
        stats = DetectorStats()
        assert stats.events_processed == 0
        assert stats.search_trigger_ratio == 0.0

    def test_search_trigger_ratio(self):
        stats = DetectorStats(events_processed=200, events_triggering_search=25)
        assert stats.search_trigger_ratio == pytest.approx(0.125)

    def test_merge_sums_counters(self):
        a = DetectorStats(events_processed=10, cells_searched=3, rectangles_swept=40)
        b = DetectorStats(events_processed=5, cells_searched=2, sweepline_calls=1)
        merged = a.merge(b)
        assert merged.events_processed == 15
        assert merged.cells_searched == 5
        assert merged.rectangles_swept == 40
        assert merged.sweepline_calls == 1
        # Merge does not mutate its inputs.
        assert a.events_processed == 10
        assert b.cells_searched == 2


class TestDefaultTopK:
    def test_top_k_defaults_to_single_result(self, small_query):
        from repro.core.cell_cspot import CellCSPOT
        from tests.helpers import feed, make_objects

        detector = CellCSPOT(small_query)
        assert detector.top_k(3) == []
        feed(detector, make_objects(10, seed=1), small_query.window_length)
        top = detector.top_k(5)
        assert len(top) == 1
        assert top[0].score == pytest.approx(detector.current_score())
