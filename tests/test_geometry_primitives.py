"""Unit tests for points and axis-aligned rectangles."""

import math

import pytest

from repro.geometry.primitives import (
    Point,
    Rect,
    rect_from_bottom_left,
    rect_from_top_right,
    region_covering_point,
)


class TestPoint:
    def test_translated_moves_both_coordinates(self):
        assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.2, -3.4), Point(-0.7, 2.2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_as_tuple_round_trips(self):
        assert Point(2.5, -1.0).as_tuple() == (2.5, -1.0)


class TestRectConstruction:
    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_zero_area_rectangle_allowed(self):
        rect = Rect(1.0, 1.0, 1.0, 1.0)
        assert rect.area == 0.0
        assert rect.contains_xy(1.0, 1.0)

    def test_width_height_area(self):
        rect = Rect(0.0, 0.0, 2.0, 3.0)
        assert rect.width == 2.0
        assert rect.height == 3.0
        assert rect.area == 6.0

    def test_corners_and_center(self):
        rect = Rect(0.0, 0.0, 2.0, 4.0)
        assert rect.bottom_left == Point(0.0, 0.0)
        assert rect.top_right == Point(2.0, 4.0)
        assert rect.center == Point(1.0, 2.0)
        assert len(list(rect.corners())) == 4

    def test_from_bottom_left(self):
        rect = rect_from_bottom_left(Point(1.0, 2.0), 3.0, 4.0)
        assert rect == Rect(1.0, 2.0, 4.0, 6.0)

    def test_from_top_right(self):
        rect = rect_from_top_right(Point(4.0, 6.0), 3.0, 4.0)
        assert rect == Rect(1.0, 2.0, 4.0, 6.0)

    def test_bottom_left_top_right_are_inverses(self):
        rect = rect_from_bottom_left(Point(-1.0, 5.0), 2.0, 0.5)
        again = rect_from_top_right(rect.top_right, 2.0, 0.5)
        assert again == rect

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            rect_from_bottom_left(Point(0, 0), -1.0, 1.0)
        with pytest.raises(ValueError):
            rect_from_top_right(Point(0, 0), 1.0, -1.0)


class TestRectPredicates:
    def test_contains_point_closed_boundaries(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point(Point(0.0, 0.0))
        assert rect.contains_point(Point(1.0, 1.0))
        assert rect.contains_point(Point(0.5, 1.0))
        assert not rect.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        inner = Rect(2.0, 2.0, 3.0, 3.0)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_touching_edges(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)
        assert not a.intersects_interior(b)

    def test_intersects_disjoint(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.5, 1.5, 2.0, 2.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersects_interior_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        assert a.intersects_interior(b)
        assert a.intersection(b) == Rect(1.0, 1.0, 2.0, 2.0)


class TestRectOperations:
    def test_union_bounds(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(2.0, -1.0, 3.0, 0.5)
        assert a.union_bounds(b) == Rect(0.0, -1.0, 3.0, 1.0)

    def test_translated(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).translated(1.0, 2.0) == Rect(1.0, 2.0, 2.0, 3.0)

    def test_expanded(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).expanded(0.5) == Rect(-0.5, -0.5, 1.5, 1.5)

    def test_clamp_point_inside_returns_same(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.clamp_point(Point(1.0, 1.5)) == Point(1.0, 1.5)

    def test_clamp_point_outside_projects_to_boundary(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.clamp_point(Point(5.0, -3.0)) == Point(2.0, 0.0)

    def test_as_tuple(self):
        assert Rect(1.0, 2.0, 3.0, 4.0).as_tuple() == (1.0, 2.0, 3.0, 4.0)

    def test_intersection_is_commutative(self):
        a = Rect(0.0, 0.0, 2.5, 2.5)
        b = Rect(1.0, -1.0, 3.0, 1.5)
        assert a.intersection(b) == b.intersection(a)

    def test_intersection_contained_in_both(self):
        a = Rect(0.0, 0.0, 2.5, 2.5)
        b = Rect(1.0, -1.0, 3.0, 1.5)
        both = a.intersection(b)
        assert a.contains_rect(both)
        assert b.contains_rect(both)


class TestRegionCoveringPoint:
    """The faithful point→region mapping (the edge-tie fix)."""

    def test_membership_equals_coverage_exhaustively(self):
        """min_x <= x  ⇔  x + width >= point.x, across many float shapes."""
        cases = [
            (5.0, 2.0),
            (0.30000000000000004, 0.2),  # the classic edge-tie float
            (0.2, 0.2),  # full cancellation: point == extent
            (1e9 + 0.125, 3.0),
            (1e-8, 1e-12),
            (-7.25, 2.5),
        ]
        for corner, extent in cases:
            region = region_covering_point(Point(corner, corner), extent, extent)
            assert region.max_x == corner
            # Probe a window of floats around the edge in both directions.
            x = region.min_x
            for _ in range(4):
                x = math.nextafter(x, -math.inf)
            for _ in range(9):
                inside = region.min_x <= x <= region.max_x
                covers = x + extent >= corner and x <= corner
                assert inside == covers, (corner, extent, x)
                x = math.nextafter(x, math.inf)

    def test_zero_extent(self):
        region = region_covering_point(Point(2.0, 3.0), 0.0, 0.0)
        assert region == Rect(2.0, 3.0, 2.0, 3.0)

    def test_non_finite_inputs_do_not_hang(self):
        """inf/NaN extents fall back to naive subtraction (no ulp search)."""
        region = region_covering_point(Point(1.0, 1.0), float("inf"), 1.0)
        assert region.min_x == float("-inf")
        region = region_covering_point(Point(float("inf"), 1.0), 2.0, 1.0)
        assert region.min_x == float("inf")
        region = region_covering_point(Point(1.0, 1.0), float("nan"), 1.0)
        assert math.isnan(region.min_x)

    def test_rejects_negative_extent(self):
        with pytest.raises(ValueError):
            region_covering_point(Point(0.0, 0.0), -1.0, 1.0)
