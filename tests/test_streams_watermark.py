"""Unit suite for the watermark reorder buffer and the bad-record screen."""

from __future__ import annotations

import pickle
import random
from dataclasses import replace

import pytest

from repro.streams.objects import SpatialObject
from repro.streams.watermark import (
    IngestStats,
    WatermarkReorderBuffer,
    classify_bad_record,
)


def obj(timestamp: float, object_id: int = 0, **kwargs) -> SpatialObject:
    defaults = dict(x=1.0, y=1.0, weight=1.0)
    defaults.update(kwargs)
    return SpatialObject(timestamp=timestamp, object_id=object_id, **defaults)


def drain(buffer: WatermarkReorderBuffer, arrivals) -> list[SpatialObject]:
    released = buffer.push_many(arrivals)
    released.extend(buffer.flush())
    return released


class TestWatermarkReorderBuffer:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_nonpositive_or_nonfinite_lateness(self, bad):
        with pytest.raises(ValueError, match="max_lateness"):
            WatermarkReorderBuffer(bad)

    def test_ordered_stream_passes_through_unchanged(self):
        arrivals = [obj(float(i), i) for i in range(10)]
        buffer = WatermarkReorderBuffer(2.0)
        assert drain(buffer, arrivals) == arrivals
        assert buffer.counters() == {
            "reordered": 0,
            "late_dropped": 0,
            "duplicates_seen": 0,
            "force_released": 0,
        }

    def test_bounded_disorder_emits_exactly_sorted(self):
        rng = random.Random(7)
        clean = [obj(float(i), i) for i in range(50)]
        # Perturb sort keys by less than max_lateness, as the fault
        # injector does: displacement stays within the bound.
        keyed = sorted(
            (o.timestamp + rng.uniform(0.0, 2.0), i, o)
            for i, o in enumerate(clean)
        )
        arrivals = [entry[2] for entry in keyed]
        assert arrivals != clean  # the scramble actually scrambled
        buffer = WatermarkReorderBuffer(2.0)
        assert drain(buffer, arrivals) == clean
        assert buffer.reordered > 0
        assert buffer.late_dropped == 0

    def test_straggler_behind_watermark_is_counted_and_dropped(self):
        buffer = WatermarkReorderBuffer(2.0)
        released = buffer.push(obj(0.0, 0))
        released += buffer.push(obj(10.0, 1))  # watermark -> 8.0: releases id 0
        assert buffer.push(obj(5.0, 2)) == []
        assert buffer.late_dropped == 1
        assert buffer.reordered == 1
        # The straggler is gone: only the two survivors ever come out.
        assert [o.object_id for o in released + buffer.flush()] == [0, 1]

    def test_boundary_is_accept_at_watermark_release_strictly_before(self):
        buffer = WatermarkReorderBuffer(2.0)
        buffer.push(obj(10.0, 1))  # watermark 8.0
        # Exactly at the watermark: accepted (not dropped) but not released.
        assert buffer.push(obj(8.0, 2)) == []
        assert buffer.late_dropped == 0
        released = buffer.push(obj(12.0, 3))  # watermark -> 10.0
        assert [o.object_id for o in released] == [2]  # 8.0 < 10.0; 10.0 held
        assert [o.object_id for o in buffer.flush()] == [1, 3]

    def test_watermark_starts_at_minus_inf_and_never_retreats(self):
        buffer = WatermarkReorderBuffer(1.0)
        assert buffer.watermark == float("-inf")
        buffer.push(obj(5.0, 0))
        assert buffer.watermark == 4.0
        buffer.push(obj(4.5, 1))  # behind max but within bound
        assert buffer.watermark == 4.0

    def test_duplicate_ids_counted_but_both_released(self):
        buffer = WatermarkReorderBuffer(2.0)
        first = obj(0.0, 7)
        again = obj(0.5, 7)
        released = drain(buffer, [first, again])
        assert released == [first, again]
        assert buffer.duplicates_seen == 1

    def test_duplicate_horizon_is_pruned_on_release(self):
        buffer = WatermarkReorderBuffer(1.0)
        buffer.push(obj(0.0, 7))
        buffer.push(obj(100.0, 1))  # releases id 7, pruning its entry
        buffer.push(obj(100.5, 7))  # same id, far outside the horizon
        assert buffer.duplicates_seen == 0

    def test_len_and_pending_sorted_view(self):
        buffer = WatermarkReorderBuffer(10.0)
        buffer.push(obj(3.0, 3))
        buffer.push(obj(1.0, 1))
        buffer.push(obj(2.0, 2))
        assert len(buffer) == 3
        assert [o.object_id for o in buffer.pending] == [1, 2, 3]

    def test_pickle_round_trip_resumes_identically(self):
        rng = random.Random(11)
        arrivals = [
            obj(float(i) + rng.uniform(-1.5, 0.0), i) for i in range(1, 40)
        ]
        half = len(arrivals) // 2
        original = WatermarkReorderBuffer(3.0)
        prefix = original.push_many(arrivals[:half])
        clone = pickle.loads(pickle.dumps(original))
        for buffer in (original, clone):
            tail = prefix + buffer.push_many(arrivals[half:]) + buffer.flush()
            assert tail == sorted(
                arrivals, key=lambda o: (o.timestamp, o.object_id)
            )
        assert clone.counters() == original.counters()


class TestClassifyBadRecord:
    def test_well_formed_object_passes(self):
        good = obj(1.0, 1, attributes={"keywords": ("concert",)})
        assert classify_bad_record(good) is None

    def test_non_spatial_object_rejected(self):
        assert "not a SpatialObject" in classify_bad_record({"x": 1.0})
        assert "not a SpatialObject" in classify_bad_record(None)

    @pytest.mark.parametrize(
        "field, value, expected",
        [
            ("timestamp", float("nan"), "non-finite timestamp"),
            ("x", float("nan"), "non-finite location"),
            ("y", float("inf"), "non-finite location"),
            ("weight", float("inf"), "non-finite weight"),
            ("timestamp", "late", "non-numeric"),
        ],
    )
    def test_non_finite_fields_rejected(self, field, value, expected):
        bad = replace(obj(1.0, 1), **{field: value})
        assert expected in classify_bad_record(bad)

    def test_bad_keywords_rejected(self):
        not_iterable = obj(1.0, 1, attributes={"keywords": 7})
        assert "keywords" in classify_bad_record(not_iterable)
        non_strings = obj(1.0, 1, attributes={"keywords": ("ok", 3)})
        assert "non-string" in classify_bad_record(non_strings)
        # A plain string is a valid (single-keyword) form, not poison.
        assert classify_bad_record(obj(1.0, 1, attributes={"keywords": "ok"})) is None

    def test_non_mapping_attributes_rejected(self):
        bad = replace(obj(1.0, 1), attributes=["keywords"])
        assert "not a mapping" in classify_bad_record(bad)


class TestIngestStats:
    def test_defaults_are_zero(self):
        stats = IngestStats()
        assert all(value == 0 for value in stats.to_dict().values())

    def test_dict_round_trip(self):
        stats = IngestStats(
            reordered=1,
            late_dropped=2,
            duplicates_seen=3,
            quarantined=4,
            subscriber_errors=5,
        )
        assert IngestStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_tolerates_missing_keys(self):
        assert IngestStats.from_dict({"reordered": 9}) == IngestStats(reordered=9)
