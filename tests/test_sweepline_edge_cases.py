"""Edge-case tests for SL-CSPOT beyond the main unit tests."""

import pytest

from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.primitives import Rect


def current(min_x, min_y, max_x, max_y, weight=1.0):
    return LabeledRect(min_x, min_y, max_x, max_y, weight, True)


def past(min_x, min_y, max_x, max_y, weight=1.0):
    return LabeledRect(min_x, min_y, max_x, max_y, weight, False)


class TestDegenerateGeometry:
    def test_many_identical_rectangles_stack(self):
        rects = [current(0, 0, 1, 1, 2.0) for _ in range(10)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(20.0)
        assert result.fc == pytest.approx(20.0)

    def test_identical_current_and_past_pairs_cancel_burstiness(self):
        rects = [current(0, 0, 1, 1, 3.0), past(0, 0, 1, 1, 3.0)]
        result = sweep_bursty_point(rects, 0.8, 1.0, 1.0)
        assert result.score == pytest.approx(0.2 * 3.0)

    def test_zero_weight_rectangles_do_not_contribute(self):
        rects = [current(0, 0, 1, 1, 0.0), current(2, 2, 3, 3, 1.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(1.0)

    def test_zero_area_rectangle_is_a_point_mass(self):
        rects = [
            LabeledRect(1.0, 1.0, 1.0, 1.0, 5.0, True),
            current(0.0, 0.0, 2.0, 2.0, 1.0),
        ]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(6.0)
        assert result.point.x == pytest.approx(1.0)
        assert result.point.y == pytest.approx(1.0)

    def test_extreme_weight_magnitudes(self):
        rects = [current(0, 0, 1, 1, 1e12), current(0.5, 0.5, 1.5, 1.5, 1e-9)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(1e12, rel=1e-6)

    def test_negative_coordinates(self):
        rects = [current(-5.0, -5.0, -4.0, -4.0, 2.0), current(-4.5, -4.5, -3.5, -3.5, 3.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(5.0)
        assert Rect(-4.5, -4.5, -4.0, -4.0).contains_point(result.point)


class TestWindowComposition:
    def test_only_past_rectangles_everywhere_zero(self):
        rects = [past(float(i), 0.0, float(i) + 1.0, 1.0, 2.0) for i in range(5)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0)
        assert result.score == pytest.approx(0.0)

    def test_alpha_zero_ignores_past_entirely(self):
        rects = [current(0, 0, 1, 1, 4.0), past(0, 0, 1, 1, 100.0)]
        result = sweep_bursty_point(rects, 0.0, 1.0, 1.0)
        assert result.score == pytest.approx(4.0)

    def test_high_alpha_prefers_fresh_area_over_heavier_stale_area(self):
        # Area A: fc = 5, fp = 5 (stale); area B: fc = 4, fp = 0 (fresh).
        # With alpha = 0.9: S(A) = 0.1*5 = 0.5, S(B) = 0.9*4 + 0.1*4 = 4.
        rects = [
            current(0, 0, 1, 1, 5.0),
            past(0, 0, 1, 1, 5.0),
            current(10, 10, 11, 11, 4.0),
        ]
        result = sweep_bursty_point(rects, 0.9, 1.0, 1.0)
        assert result.score == pytest.approx(4.0)
        assert Rect(10, 10, 11, 11).contains_point(result.point)

    def test_low_alpha_prefers_heavier_area_despite_staleness(self):
        rects = [
            current(0, 0, 1, 1, 5.0),
            past(0, 0, 1, 1, 5.0),
            current(10, 10, 11, 11, 4.0),
        ]
        result = sweep_bursty_point(rects, 0.1, 1.0, 1.0)
        assert result.score == pytest.approx(0.9 * 5.0)
        assert Rect(0, 0, 1, 1).contains_point(result.point)

    def test_asymmetric_window_lengths(self):
        # |Wc| = 2, |Wp| = 4: fc = 3, fp = 1 -> S = 0.5*2 + 0.5*3 = 2.5.
        rects = [current(0, 0, 1, 1, 6.0), past(0, 0, 1, 1, 4.0)]
        result = sweep_bursty_point(rects, 0.5, 2.0, 4.0)
        assert result.fc == pytest.approx(3.0)
        assert result.fp == pytest.approx(1.0)
        assert result.score == pytest.approx(2.5)


class TestClippingEdgeCases:
    def test_bounds_touching_rectangle_edge(self):
        rects = [current(0, 0, 1, 1, 2.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(1.0, 1.0, 2.0, 2.0))
        # Only the single corner point (1, 1) is shared; it is still covered.
        assert result is not None
        assert result.score == pytest.approx(2.0)
        assert result.point.x == pytest.approx(1.0)

    def test_bounds_equal_to_rectangle(self):
        rects = [current(0, 0, 1, 1, 2.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(0, 0, 1, 1))
        assert result.score == pytest.approx(2.0)

    def test_degenerate_bounds_line(self):
        rects = [current(0, 0, 2, 2, 2.0), current(1, 0, 3, 2, 1.0)]
        result = sweep_bursty_point(rects, 0.5, 1.0, 1.0, bounds=Rect(1.5, 0.0, 1.5, 2.0))
        assert result is not None
        assert result.score == pytest.approx(3.0)
        assert result.point.x == pytest.approx(1.5)
