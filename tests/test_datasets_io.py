"""Unit tests for stream file readers and writers (CSV / JSON Lines)."""

import json

import pytest

from repro.datasets.io import (
    StreamFormatError,
    load_stream,
    read_csv_stream,
    read_jsonl_stream,
    write_csv_stream,
    write_jsonl_stream,
)
from repro.streams.objects import SpatialObject


def sample_objects():
    return [
        SpatialObject(x=1.0, y=2.0, timestamp=10.0, weight=3.0, object_id=0),
        SpatialObject(x=-1.5, y=0.25, timestamp=20.0, weight=1.0, object_id=1),
        SpatialObject(
            x=4.0, y=4.0, timestamp=30.0, weight=2.0, object_id=2, attributes={"keywords": ["zika"]}
        ),
    ]


class TestCsvRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "stream.csv"
        written = write_csv_stream(path, sample_objects())
        assert written == 3
        loaded = list(read_csv_stream(path))
        assert len(loaded) == 3
        assert loaded[0].x == 1.0
        assert loaded[1].weight == 1.0
        assert loaded[2].object_id == 2

    def test_keywords_survive_the_round_trip(self, tmp_path):
        # The multi-query service routes on the keywords tuple, so replayed
        # files must carry it: written as a |-joined column, read back as
        # the canonical tuple (absent for objects without keywords).
        path = tmp_path / "stream.csv"
        write_csv_stream(path, sample_objects())
        loaded = list(read_csv_stream(path))
        assert loaded[2].attributes["keywords"] == ("zika",)
        assert "keywords" not in loaded[0].attributes

    def test_multi_keyword_column_splits(self, tmp_path):
        path = tmp_path / "multi.csv"
        path.write_text("timestamp,x,y,keywords\n1.0,2.0,3.0,zika|virus\n")
        (obj,) = list(read_csv_stream(path))
        assert obj.attributes["keywords"] == ("zika", "virus")

    def test_keyword_containing_delimiter_rejected_on_write(self, tmp_path):
        # '|' inside a keyword would silently split on read-back, so the
        # writer refuses it instead of corrupting the round-trip.
        bad = SpatialObject(
            x=0.0, y=0.0, timestamp=0.0, attributes={"keywords": ("rock|roll",)}
        )
        with pytest.raises(ValueError, match="delimiter"):
            write_csv_stream(tmp_path / "bad.csv", [bad])

    def test_missing_required_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(StreamFormatError, match="header"):
            list(read_csv_stream(path))

    def test_extra_columns_become_attributes(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text("timestamp,x,y,weight,city\n1.0,2.0,3.0,4.0,rome\n")
        (obj,) = list(read_csv_stream(path))
        assert obj.attributes["city"] == "rome"

    def test_defaults_for_missing_optional_fields(self, tmp_path):
        path = tmp_path / "minimal.csv"
        path.write_text("timestamp,x,y\n5.0,1.0,1.0\n6.0,2.0,2.0\n")
        objects = list(read_csv_stream(path))
        assert [o.weight for o in objects] == [1.0, 1.0]
        assert [o.object_id for o in objects] == [0, 1]

    def test_malformed_row_raises_or_skips(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("timestamp,x,y\n1.0,2.0,3.0\nnot-a-number,2.0,3.0\n")
        with pytest.raises(StreamFormatError):
            list(read_csv_stream(path, on_error="raise"))
        kept = list(read_csv_stream(path, on_error="skip"))
        assert len(kept) == 1

    def test_negative_weight_rejected(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("timestamp,x,y,weight\n1.0,2.0,3.0,-4.0\n")
        with pytest.raises(StreamFormatError, match="negative weight"):
            list(read_csv_stream(path))


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        written = write_jsonl_stream(path, sample_objects())
        assert written == 3
        loaded = list(read_jsonl_stream(path))
        assert len(loaded) == 3
        # Keywords are normalised to the canonical tuple form on read, so
        # the routing predicates and stream equality behave identically for
        # generated and replayed streams.
        assert loaded[2].attributes["keywords"] == ("zika",)

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"timestamp": 1, "x": 2, "y": 3}\n\n{"timestamp": 2, "x": 0, "y": 0}\n')
        assert len(list(read_jsonl_stream(path))) == 2

    def test_non_iterable_keywords_respects_on_error(self, tmp_path):
        path = tmp_path / "badkw.jsonl"
        path.write_text(
            '{"timestamp": 1, "x": 0, "y": 0, "attributes": {"keywords": 5}}\n'
            '{"timestamp": 2, "x": 0, "y": 0}\n'
        )
        with pytest.raises(StreamFormatError, match="bad keywords"):
            list(read_jsonl_stream(path, on_error="raise"))
        kept = list(read_jsonl_stream(path, on_error="skip"))
        assert len(kept) == 1

    def test_invalid_json_raises_or_skips(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"timestamp": 1, "x": 2, "y": 3}\nnot json\n')
        with pytest.raises(StreamFormatError):
            list(read_jsonl_stream(path, on_error="raise"))
        assert len(list(read_jsonl_stream(path, on_error="skip"))) == 1

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "array.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(StreamFormatError, match="not an object"):
            list(read_jsonl_stream(path))


class TestLoadStream:
    def test_load_sorts_by_timestamp(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        records = [
            {"timestamp": 30.0, "x": 0, "y": 0, "object_id": 2},
            {"timestamp": 10.0, "x": 0, "y": 0, "object_id": 0},
            {"timestamp": 20.0, "x": 0, "y": 0, "object_id": 1},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records))
        loaded = load_stream(path)
        assert [o.object_id for o in loaded] == [0, 1, 2]

    def test_load_csv_by_extension(self, tmp_path):
        path = tmp_path / "stream.csv"
        write_csv_stream(path, sample_objects())
        assert len(load_stream(path)) == 3

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "stream.parquet"
        path.write_text("")
        with pytest.raises(StreamFormatError, match="unsupported"):
            load_stream(path)

    def test_round_trip_preserves_detection_results(self, tmp_path):
        """Persisting and reloading a stream does not change what is detected."""
        from repro.core.monitor import SurgeMonitor
        from repro.core.query import SurgeQuery
        from tests.helpers import make_objects

        objects = make_objects(40, seed=3)
        path = tmp_path / "round.jsonl"
        write_jsonl_stream(path, objects)
        reloaded = load_stream(path)

        query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0)
        direct = SurgeMonitor(query, algorithm="ccs")
        from_file = SurgeMonitor(query, algorithm="ccs")
        for a, b in zip(objects, reloaded):
            direct.push(a)
            from_file.push(b)
        assert direct.result().score == pytest.approx(from_file.result().score)
