"""Shared fixtures for the SURGE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.query import SurgeQuery


@pytest.fixture
def small_query() -> SurgeQuery:
    """A small query used across unit tests: 1×1 regions, 20 s windows."""
    return SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=20.0, alpha=0.5)


@pytest.fixture
def topk_query() -> SurgeQuery:
    """A top-3 query variant of :func:`small_query`."""
    return SurgeQuery(
        rect_width=1.0, rect_height=1.0, window_length=20.0, alpha=0.5, k=3
    )
