"""Strict Prometheus text-format 0.0.4 validation of ``/metrics`` output.

:func:`repro.server.metrics.render_prometheus` is consumed by real
scrapers, so this suite enforces the exposition-format contract rather
than spot-checking substrings: every family declares ``# HELP`` and
``# TYPE`` before its samples, every sample line parses (metric name,
escaped labels, float value), histogram families carry cumulative
``le`` buckets ending in ``+Inf`` with ``_sum``/``_count`` conservation,
and the ``repro_stage_seconds`` histograms conserve against the work the
service actually did (one ``bus.publish`` observation per chunk pushed).
"""

from __future__ import annotations

import math
import re

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.obs import HISTOGRAM_BOUNDS, Tracer, install
from repro.server.engine import ServerEngine
from repro.server.metrics import escape_label_value, render_prometheus
from repro.service import QuerySpec, SurgeService

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME})(?:\{{(?P<labels>.*)\}})? (?P<value>\S+)$"
)
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"(?:,|$)')


_ESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape(value: str) -> str:
    # One left-to-right pass: sequential str.replace would mis-read the
    # 'n' of an escaped backslash followed by a literal n as a newline.
    return re.sub(
        r"\\(.)", lambda m: _ESCAPES.get(m.group(1), m.group(1)), value
    )


def parse_exposition(text: str):
    """Parse 0.0.4 exposition text, asserting its structure as we go.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, dict] = {}
    current: str | None = None
    helped: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            assert len(parts) >= 4, f"line {line_number}: HELP without text"
            name = parts[2]
            assert name not in helped, f"duplicate HELP for {name}"
            helped.add(name)
            current = None
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, f"line {line_number}: malformed TYPE"
            _, _, name, kind = parts
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            assert name in helped, f"TYPE for {name} before its HELP"
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = {"type": kind, "samples": []}
            current = name
            continue
        assert not line.startswith("#"), f"line {line_number}: stray comment"
        match = _SAMPLE_RE.match(line)
        assert match, f"line {line_number}: unparseable sample {line!r}"
        name = match.group("name")
        assert current is not None, f"line {line_number}: sample before TYPE"
        family = families[current]
        allowed = {current}
        if family["type"] == "histogram":
            allowed = {current + "_bucket", current + "_sum", current + "_count"}
        elif family["type"] == "summary":
            allowed = {current, current + "_sum", current + "_count"}
        assert name in allowed, (
            f"line {line_number}: sample {name} outside family {current}"
        )
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw is not None:
            consumed = 0
            for pair in _LABEL_RE.finditer(raw):
                labels[pair.group(1)] = _unescape(pair.group(2))
                consumed = pair.end()
            assert consumed == len(raw), (
                f"line {line_number}: malformed labels {raw!r}"
            )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        else:
            value = float(value_text)  # raises on malformed values
        family["samples"].append((name, labels, value))
    return families


def check_histograms(families: dict) -> int:
    """Assert every histogram family's bucket/sum/count invariants."""
    checked = 0
    for family_name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: dict[tuple, dict] = {}
        for name, labels, value in family["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                assert "le" in labels, f"{family_name}: bucket without le"
                le = (
                    math.inf if labels["le"] == "+Inf" else float(labels["le"])
                )
                entry["buckets"].append((le, value))
            elif name.endswith("_sum"):
                entry["sum"] = value
            else:
                entry["count"] = value
        for key, entry in series.items():
            bounds = [le for le, _ in entry["buckets"]]
            counts = [count for _, count in entry["buckets"]]
            assert bounds == sorted(bounds), f"{family_name}{key}: unsorted le"
            assert bounds and bounds[-1] == math.inf, (
                f"{family_name}{key}: missing +Inf bucket"
            )
            assert counts == sorted(counts), (
                f"{family_name}{key}: buckets not cumulative"
            )
            assert entry["count"] is not None and entry["sum"] is not None
            assert counts[-1] == entry["count"], (
                f"{family_name}{key}: +Inf bucket != _count"
            )
            checked += 1
    return checked


def spec(query_id="q", **query_kwargs) -> QuerySpec:
    defaults = dict(rect_width=1.0, rect_height=1.0, window_length=50.0)
    defaults.update(query_kwargs)
    return QuerySpec(
        query_id=query_id, query=SurgeQuery(**defaults), backend="python"
    )


@pytest.fixture(autouse=True)
def _no_global_tracer():
    install(None)
    yield
    install(None)


def engine_snapshot(service: SurgeService) -> dict:
    engine = ServerEngine(service, chunk_size=64)
    try:
        return engine.submit("stats").result(timeout=30)
    finally:
        engine.stop()


class TestExpositionValidity:
    def render(self, *, traced: bool):
        tracer = Tracer(enabled=True) if traced else None
        service = SurgeService(
            [spec("plain"), spec("weird \"query\"\\n", rect_width=2.0)],
            shards=2,
            tracer=tracer,
        )
        with service:
            for start in range(0, 192, 64):
                service.push_many(make_objects(192, seed=11)[start : start + 64])
            snapshot = engine_snapshot(service)
        return render_prometheus(snapshot), service

    def test_untraced_exposition_is_strictly_valid(self):
        text, _ = self.render(traced=False)
        families = parse_exposition(text)
        assert "repro_service_chunks_pushed_total" in families
        # No tracer → no stage histograms at all.
        assert "repro_stage_seconds" not in families

    def test_traced_exposition_is_strictly_valid_with_histograms(self):
        text, service = self.render(traced=True)
        families = parse_exposition(text)
        stage_family = families["repro_stage_seconds"]
        assert stage_family["type"] == "histogram"
        assert check_histograms(families) >= 3  # one series set per stage

        # Conservation against the service's own counters: exactly one
        # bus.publish span per pushed chunk, one route.bucket per
        # shard-chunk dispatch.
        counts = {
            labels["stage"]: value
            for name, labels, value in stage_family["samples"]
            if name == "repro_stage_seconds_count"
        }
        chunks = next(
            value
            for name, _, value in families["repro_service_chunks_pushed_total"][
                "samples"
            ]
            if name == "repro_service_chunks_pushed_total"
        )
        assert counts["bus.publish"] == chunks == 3
        assert counts["route.bucket"] == chunks * service.n_shards

        # Every declared bound appears as a bucket on every stage series.
        bucket_les = {
            labels["le"]
            for name, labels, _ in stage_family["samples"]
            if name == "repro_stage_seconds_bucket"
            and labels["stage"] == "bus.publish"
        }
        assert bucket_les == {repr(float(b)) for b in HISTOGRAM_BOUNDS} | {"+Inf"}

    def test_label_escaping_round_trips(self):
        text, _ = self.render(traced=False)
        families = parse_exposition(text)
        routed = families["repro_query_objects_routed_total"]["samples"]
        queries = {labels["query"] for _, labels, _ in routed}
        assert 'weird "query"\\n' in queries  # backslash + quotes survived

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


class TestHistogramChecker:
    def test_rejects_non_cumulative_buckets(self):
        bad = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        with pytest.raises(AssertionError, match="not cumulative"):
            check_histograms(parse_exposition(bad))

    def test_rejects_inf_count_mismatch(self):
        bad = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 4\n"
        )
        with pytest.raises(AssertionError, match="_count"):
            check_histograms(parse_exposition(bad))

    def test_rejects_samples_before_type(self):
        with pytest.raises(AssertionError, match="before TYPE"):
            parse_exposition("m 1\n")
