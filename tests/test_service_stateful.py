"""Stateful property suite: the service under arbitrary operation interleavings.

A Hypothesis :class:`RuleBasedStateMachine` drives three live
:class:`~repro.service.SurgeService` instances (serial×1-shard with the
shared-work execution plan *disabled* — the per-query reference —
serial×3-shard and thread×2-shard with the shared plan on) through random
interleavings of ``push`` / ``push_many`` / ``advance_time`` /
``add_query`` / ``remove_query`` / ``checkpoint_restore`` (kill one
service and resurrect it from a durable checkpoint mid-interleaving *with
the opposite execution plan* — the restored instance must be
indistinguishable from the others from then on, so a checkpoint/restore
cycle and a plan flip are both unobservable), mirroring every operation
onto two oracles:

* a **batch oracle** — one private :class:`~repro.core.monitor.SurgeMonitor`
  per query fed the keyword-filtered slice of exactly the same chunks.  The
  services must match it (and each other) *bit for bit* after every rule:
  same scores, same regions, same routed-object counts — regardless of the
  sharding backend;
* an **event oracle** — the same monitors fed one object at a time through
  the per-event path.  Chunk boundaries re-order floating-point
  accumulation, so this comparison is tolerance-based (the contract
  documented on :meth:`SurgeMonitor.push_many`), plus an exact check on the
  window populations.

The process executor is exercised by the cheaper deterministic suites in
``tests/test_service_differential.py`` — spawning worker processes per
Hypothesis example would dominate the runtime without adding coverage (all
backends run the identical :class:`~repro.service.shards.ShardState` code).

The module self-skips when Hypothesis is not installed (it is a test-only
dependency; the library itself stays dependency-free).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.monitor import SurgeMonitor
from repro.core.query import SurgeQuery
from repro.datasets.keywords import keyword_predicate
from repro.service import QuerySpec, SurgeService
from repro.streams.objects import SpatialObject

VOCABULARY = ("concert", "parade", "zika")
#: Detector pool for randomly-registered queries: one exact sweep-based, one
#: grid approximation, one top-k — the three result-maintenance families.
ALGORITHMS = ("ccs", "gaps", "kccs")

SCORE_RTOL = 1e-9


def scores_close(a: float, b: float) -> bool:
    return abs(a - b) <= SCORE_RTOL * max(1.0, abs(a), abs(b))


#: One stream object: (time delta, x, y, weight, keyword index or None).
object_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.one_of(st.none(), st.integers(min_value=0, max_value=len(VOCABULARY) - 1)),
)


class ServiceEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.services: list[SurgeService] = []
        self.batch_oracle: dict[str, SurgeMonitor] = {}
        self.event_oracle: dict[str, SurgeMonitor] = {}
        self.specs: dict[str, QuerySpec] = {}
        self.time = 0.0
        self.next_object_id = 0
        self.next_query_index = 0
        self.workdir = Path(tempfile.mkdtemp(prefix="service-stateful-"))
        self.next_checkpoint_index = 0

    @initialize()
    def start_services(self) -> None:
        self.services = [
            SurgeService(shards=1, executor="serial", shared_plan=False),
            SurgeService(shards=3, executor="serial"),
            SurgeService(shards=2, executor="thread"),
        ]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @rule(
        keyword_index=st.one_of(
            st.none(), st.integers(min_value=0, max_value=len(VOCABULARY) - 1)
        ),
        algorithm=st.sampled_from(ALGORITHMS),
        size=st.sampled_from((0.8, 1.0, 1.5)),
        window=st.sampled_from((15.0, 25.0)),
    )
    def add_query(self, keyword_index, algorithm, size, window) -> None:
        query_id = f"q{self.next_query_index}"
        self.next_query_index += 1
        spec = QuerySpec(
            query_id=query_id,
            query=SurgeQuery(
                rect_width=size,
                rect_height=size,
                window_length=window,
                k=2 if algorithm == "kccs" else 1,
            ),
            algorithm=algorithm,
            keyword=None if keyword_index is None else VOCABULARY[keyword_index],
            backend="python" if algorithm in ("ccs", "kccs") else None,
        )
        for service in self.services:
            service.add_query(spec)
        self.specs[query_id] = spec
        self.batch_oracle[query_id] = spec.build_monitor()
        self.event_oracle[query_id] = spec.build_monitor()

    @rule(data=st.data())
    def remove_query(self, data) -> None:
        if not self.specs:
            return
        query_id = data.draw(st.sampled_from(sorted(self.specs)), label="remove_id")
        for service in self.services:
            service.remove_query(query_id)
        del self.specs[query_id]
        del self.batch_oracle[query_id]
        del self.event_oracle[query_id]

    def _ingest(self, raw_objects) -> list[SpatialObject]:
        chunk = []
        for dt, x, y, weight, keyword_index in raw_objects:
            self.time += dt
            attributes = (
                {"keywords": (VOCABULARY[keyword_index],)}
                if keyword_index is not None
                else {}
            )
            chunk.append(
                SpatialObject(
                    x=x,
                    y=y,
                    timestamp=self.time,
                    weight=weight,
                    object_id=self.next_object_id,
                    attributes=attributes,
                )
            )
            self.next_object_id += 1
        return chunk

    def _mirror_chunk(self, chunk: list[SpatialObject]) -> None:
        """Feed one service chunk to both oracles (their defining protocols)."""
        for query_id, spec in self.specs.items():
            predicate = keyword_predicate(spec.keyword)
            matched = [obj for obj in chunk if predicate(obj)]
            if matched:
                self.batch_oracle[query_id].push_many(matched)
                for obj in matched:
                    self.event_oracle[query_id].push(obj)

    @rule(raw_objects=st.lists(object_strategy, min_size=1, max_size=12))
    def push_many(self, raw_objects) -> None:
        chunk = self._ingest(raw_objects)
        for service in self.services:
            service.push_many(chunk)
        self._mirror_chunk(chunk)

    @rule(raw_object=object_strategy)
    def push_single(self, raw_object) -> None:
        chunk = self._ingest([raw_object])
        for service in self.services:
            service.push(chunk[0])
        self._mirror_chunk(chunk)

    @rule(service_index=st.integers(min_value=0, max_value=2))
    def checkpoint_restore(self, service_index) -> None:
        """Kill one service and resurrect it from a durable checkpoint.

        The restored instance replaces the original in the fleet, so every
        subsequent rule and invariant exercises it against the survivors and
        the oracles — a checkpoint/restore cycle at an arbitrary point of an
        arbitrary operation interleaving must be unobservable.  The restore
        flips the victim's shared-work execution plan, so checkpoints taken
        under either plan are continually proven to resume under the other
        bit-identically (the plan is an execution strategy, not state).
        """
        victim = self.services[service_index]
        checkpoint_dir = self.workdir / f"ckpt-{self.next_checkpoint_index}"
        self.next_checkpoint_index += 1
        victim.checkpoint(checkpoint_dir)
        flipped_plan = not victim.shared_plan
        victim.close()  # the "crash": all in-memory state is gone
        self.services[service_index] = SurgeService.restore(
            checkpoint_dir, attach=False, shared_plan=flipped_plan
        )

    @rule(dt=st.floats(min_value=0.0, max_value=40.0, allow_nan=False))
    def advance_time(self, dt) -> None:
        self.time += dt
        for service in self.services:
            service.advance_time(self.time)
        for query_id in self.specs:
            self.batch_oracle[query_id].advance_time(self.time)
            self.event_oracle[query_id].advance_time(self.time)

    # ------------------------------------------------------------------
    # Equivalence checks
    # ------------------------------------------------------------------
    @invariant()
    def services_match_oracles(self) -> None:
        reference = self.services[0]
        expected_ids = sorted(self.specs)
        all_results = [service.results() for service in self.services]
        for results in all_results:
            assert sorted(results) == expected_ids
        for query_id in expected_ids:
            batch_result = self.batch_oracle[query_id].result()
            reference_result = all_results[0][query_id]
            # Bit-identical across every sharding backend AND vs the batch
            # oracle: sharding must never change an answer.
            for service, results in zip(self.services, all_results):
                got = results[query_id]
                if batch_result is None:
                    assert got is None, (
                        f"{service.executor_name}/{service.n_shards}: "
                        f"{query_id} reported a region the oracle does not have"
                    )
                else:
                    assert got is not None
                    assert got.score == batch_result.score
                    assert got.region == batch_result.region
                    assert got.point == batch_result.point
            # Chunk-boundary independence vs the per-event oracle: scores to
            # fp tolerance, window populations exactly.
            event_monitor = self.event_oracle[query_id]
            event_result = event_monitor.result()
            if (batch_result is None) != (event_result is None):
                # A zero-score optimum can be reported as None by one path
                # only when every alive object nets out to score 0.
                present = batch_result if batch_result is not None else event_result
                assert scores_close(present.score, 0.0)
            elif batch_result is not None:
                assert scores_close(batch_result.score, event_result.score)
            batch_state = self.batch_oracle[query_id].window_state()
            event_state = event_monitor.window_state()
            assert [o.object_id for o in batch_state.current] == [
                o.object_id for o in event_state.current
            ]
            assert [o.object_id for o in batch_state.past] == [
                o.object_id for o in event_state.past
            ]
        # Routed-object accounting matches across backends.
        for query_id in expected_ids:
            counts = {
                service.bus.stats(query_id).objects_routed
                for service in self.services
            }
            assert len(counts) == 1, f"{query_id}: routed counts diverge {counts}"
        del reference

    def teardown(self) -> None:
        for service in self.services:
            service.close()
        shutil.rmtree(self.workdir, ignore_errors=True)


ServiceEquivalenceMachine.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=30,
    deadline=None,
    print_blob=True,
)

TestServiceEquivalence = ServiceEquivalenceMachine.TestCase
