"""Unit tests for the approximation-ratio harness."""

import math

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.evaluation.ratio import measure_approximation_ratio


@pytest.fixture
def query():
    return SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=10.0, alpha=0.5)


@pytest.fixture
def stream():
    return make_objects(100, seed=41, extent=6.0, time_step=0.4)


class TestMeasureApproximationRatio:
    def test_ratio_between_bound_and_one(self, query, stream):
        outcome = measure_approximation_ratio("gaps", query, stream, sample_every=5)
        assert outcome.samples > 0
        assert outcome.mean_ratio <= 1.0 + 1e-9
        assert outcome.min_ratio >= (1 - query.alpha) / 4.0 - 1e-9
        assert outcome.mean_percent == pytest.approx(outcome.mean_ratio * 100.0)

    def test_exact_versus_exact_is_one(self, query, stream):
        outcome = measure_approximation_ratio("naive", query, stream, sample_every=10)
        assert outcome.samples > 0
        assert outcome.mean_ratio == pytest.approx(1.0)
        assert outcome.min_ratio == pytest.approx(1.0)

    def test_mgaps_at_least_as_good_as_gaps(self, query, stream):
        gaps = measure_approximation_ratio("gaps", query, stream, sample_every=5)
        mgaps = measure_approximation_ratio("mgaps", query, stream, sample_every=5)
        assert mgaps.mean_ratio >= gaps.mean_ratio - 0.05

    def test_requires_exact_reference(self, query, stream):
        with pytest.raises(ValueError, match="not exact"):
            measure_approximation_ratio("gaps", query, stream, exact="mgaps")

    def test_no_samples_when_stream_never_stabilises(self, query):
        short = make_objects(5, seed=1, time_step=0.1)
        outcome = measure_approximation_ratio("gaps", query, short, sample_every=1)
        assert outcome.samples == 0
        assert math.isnan(outcome.mean_ratio)

    def test_names_recorded(self, query, stream):
        outcome = measure_approximation_ratio("gaps", query, stream[:40], sample_every=10)
        assert outcome.approximate_name == "gaps"
        assert outcome.exact_name == "ccs"
