"""Unit tests for the regular grid addressing used by every detector."""

import pytest

from repro.geometry.grids import GridSpec, cell_of_point, cells_overlapping_rect
from repro.geometry.primitives import Point, Rect


class TestGridSpecBasics:
    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(cell_width=0.0, cell_height=1.0)
        with pytest.raises(ValueError):
            GridSpec(cell_width=1.0, cell_height=-2.0)

    def test_cell_of_origin_cell(self):
        grid = GridSpec(cell_width=2.0, cell_height=3.0)
        assert grid.cell_of(0.5, 0.5) == (0, 0)
        assert grid.cell_of(1.9, 2.9) == (0, 0)

    def test_cell_of_negative_coordinates(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        assert grid.cell_of(-0.5, -0.5) == (-1, -1)
        assert grid.cell_of(-1.0, -1.0) == (-1, -1)

    def test_cell_of_boundary_goes_to_higher_cell(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        assert grid.cell_of(1.0, 0.5) == (1, 0)
        assert grid.cell_of(0.5, 2.0) == (0, 2)

    def test_cell_of_respects_origin(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0, origin_x=0.5, origin_y=0.5)
        assert grid.cell_of(0.4, 0.4) == (-1, -1)
        assert grid.cell_of(0.6, 0.6) == (0, 0)

    def test_cell_rect_round_trip(self):
        grid = GridSpec(cell_width=2.0, cell_height=0.5, origin_x=-1.0, origin_y=3.0)
        rect = grid.cell_rect((2, -1))
        assert rect == Rect(3.0, 2.5, 5.0, 3.0)
        # Every interior point of a cell maps back to the same index.
        assert grid.cell_of(rect.center.x, rect.center.y) == (2, -1)

    def test_point_always_inside_its_cell_rect(self):
        grid = GridSpec(cell_width=0.7, cell_height=1.3, origin_x=0.1, origin_y=-0.2)
        for x, y in [(0.0, 0.0), (5.3, -2.7), (-3.9, 10.0), (0.1, -0.2)]:
            index = grid.cell_of(x, y)
            assert grid.cell_rect(index).contains_xy(x, y)

    def test_module_level_wrappers(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        assert cell_of_point(grid, Point(2.5, 3.5)) == (2, 3)
        cells = cells_overlapping_rect(grid, Rect(0.1, 0.1, 0.9, 0.9))
        assert cells == [(0, 0)]


class TestCellsOverlapping:
    def test_rect_inside_one_cell(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        assert list(grid.cells_overlapping(Rect(0.2, 0.2, 0.8, 0.8))) == [(0, 0)]

    def test_query_sized_rect_general_position_overlaps_four_cells(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        cells = set(grid.cells_overlapping(Rect(0.5, 0.5, 1.5, 1.5)))
        assert cells == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_aligned_rect_touches_neighbouring_cells(self):
        # A cell-aligned rectangle touches its neighbours along zero-area
        # strips; the overlap enumeration reports them, which costs a bit of
        # extra work for the detectors but never correctness.
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        cells = set(grid.cells_overlapping(Rect(1.0, 1.0, 2.0, 2.0)))
        assert (1, 1) in cells
        assert cells <= {(i, j) for i in (0, 1, 2) for j in (0, 1, 2)}

    def test_large_rect_spans_many_cells(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        cells = set(grid.cells_overlapping(Rect(0.1, 0.1, 3.1, 1.1)))
        assert {(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (3, 1)} <= cells

    def test_every_reported_cell_actually_intersects(self):
        grid = GridSpec(cell_width=0.8, cell_height=1.2, origin_x=0.3, origin_y=-0.4)
        rect = Rect(1.05, 0.2, 2.9, 2.7)
        for index in grid.cells_overlapping(rect):
            assert grid.cell_rect(index).intersects(rect)


class TestShiftedGrids:
    def test_shifted_moves_origin_by_cell_fraction(self):
        grid = GridSpec(cell_width=2.0, cell_height=4.0)
        shifted = grid.shifted(0.5, 0.5)
        assert shifted.origin_x == pytest.approx(1.0)
        assert shifted.origin_y == pytest.approx(2.0)
        assert shifted.cell_width == grid.cell_width

    def test_mgap_family_has_four_distinct_origins(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        family = grid.mgap_family()
        assert len(family) == 4
        assert family[0] is grid
        origins = {(g.origin_x, g.origin_y) for g in family}
        assert origins == {(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.5, 0.5)}

    def test_point_maps_to_different_cells_in_shifted_grids(self):
        grid = GridSpec(cell_width=1.0, cell_height=1.0)
        shifted = grid.shifted(0.5, 0.0)
        assert grid.cell_of(0.6, 0.1) == (0, 0)
        assert shifted.cell_of(0.6, 0.1) == (0, 0)
        assert grid.cell_of(0.4, 0.1) == (0, 0)
        assert shifted.cell_of(0.4, 0.1) == (-1, 0)
