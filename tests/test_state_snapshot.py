"""Unit suite for the durable-state substrate (repro.state).

Covers the three layers beneath the service integration:

* the ``snapshot/v1`` codec — round-trip fidelity, atomicity guarantees
  (no temp-file debris, old file intact on failed writes), and the clear
  failure modes: bad magic, corrupt header, truncated payload, wrong kind,
  and — the contractually required one — an *unknown schema version*, which
  must raise :class:`~repro.state.SnapshotSchemaError` naming both versions
  before any payload bytes are unpickled;
* the chunk-offset WAL — append/checkpoint/read cycle, torn-tail tolerance,
  schema validation;
* :class:`~repro.state.CheckpointPolicy` — chunk and stream-time triggers,
  validation.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.state import (
    CheckpointPolicy,
    SnapshotError,
    SnapshotSchemaError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.state.snapshot import SNAPSHOT_MAGIC, SNAPSHOT_SCHEMA
from repro.state.wal import ChunkWal, WalCheckpoint


class TestSnapshotCodec:
    def test_round_trip(self, tmp_path):
        payload = {"deque": [1.5, 2.5], "nested": {"heap": [(-3.0, 1, (0, 1))]}}
        path = tmp_path / "state.snap"
        header = write_snapshot(path, "monitor", payload, meta={"offset": 7})
        assert header["schema"] == SNAPSHOT_SCHEMA
        got_header, got_payload = read_snapshot(path)
        assert got_header["kind"] == "monitor"
        assert got_header["meta"]["offset"] == 7
        assert got_payload == payload

    def test_floats_round_trip_bit_exactly(self, tmp_path):
        values = [0.1 + 0.2, 1e-300, float("inf"), -0.0, 2**53 + 1.0]
        path = tmp_path / "floats.snap"
        write_snapshot(path, "test", values)
        _, got = read_snapshot(path)
        assert all(a == b for a, b in zip(got, values))
        assert str(got[3]) == "-0.0"  # sign of zero preserved

    def test_header_readable_without_payload(self, tmp_path):
        path = tmp_path / "state.snap"
        write_snapshot(path, "service-shard", object(), meta={"shard": 3})
        header = read_snapshot_header(path)
        assert header["kind"] == "service-shard"
        assert header["meta"]["shard"] == 3

    def test_unknown_schema_version_fails_clearly(self, tmp_path):
        """The required error path: a snapshot from a newer/foreign codec."""
        path = tmp_path / "future.snap"
        write_snapshot(path, "monitor", {"x": 1})
        raw = path.read_bytes()
        header_end = raw.index(b"\n", len(SNAPSHOT_MAGIC))
        header = json.loads(raw[len(SNAPSHOT_MAGIC) : header_end])
        header["schema"] = "snapshot/v99"
        path.write_bytes(
            SNAPSHOT_MAGIC
            + json.dumps(header).encode()
            + raw[header_end:]
        )
        with pytest.raises(SnapshotSchemaError) as excinfo:
            read_snapshot(path)
        message = str(excinfo.value)
        assert "snapshot/v99" in message
        assert SNAPSHOT_SCHEMA in message
        # The cheap header probe fails the same way.
        with pytest.raises(SnapshotSchemaError):
            read_snapshot_header(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not-a-snapshot"
        path.write_bytes(b"PNG\x89 something else entirely")
        with pytest.raises(SnapshotError, match="not a repro snapshot"):
            read_snapshot(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "corrupt.snap"
        path.write_bytes(SNAPSHOT_MAGIC + b"{not json}\n")
        with pytest.raises(SnapshotError, match="corrupt snapshot header"):
            read_snapshot(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "trunc.snap"
        write_snapshot(path, "monitor", list(range(100)))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])
        with pytest.raises(SnapshotError, match="corrupt snapshot payload"):
            read_snapshot(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "kind.snap"
        write_snapshot(path, "monitor", {})
        with pytest.raises(SnapshotError, match="not the expected"):
            read_snapshot(path, expected_kind="service-shard")

    def test_unpicklable_payload_leaves_previous_file_intact(self, tmp_path):
        path = tmp_path / "state.snap"
        write_snapshot(path, "monitor", {"generation": 1})
        with pytest.raises(SnapshotError, match="cannot snapshot"):
            write_snapshot(path, "monitor", lambda: None)  # not picklable
        _, payload = read_snapshot(path)
        assert payload == {"generation": 1}
        assert list(tmp_path.glob("*.tmp")) == []  # no temp debris

    def test_payload_not_unpickled_on_schema_mismatch(self, tmp_path):
        """Schema check happens before any pickle bytes are touched."""
        path = tmp_path / "armed.snap"
        header = {"schema": "snapshot/v99", "kind": "monitor", "meta": {}}
        # A payload that would explode if unpickled.
        bomb = pickle.dumps(object)
        path.write_bytes(
            SNAPSHOT_MAGIC + json.dumps(header).encode() + b"\n" + b"\x80garbage"
        )
        del bomb
        with pytest.raises(SnapshotSchemaError):
            read_snapshot(path)


class TestPayloadChecksum:
    def test_header_records_crc_and_length(self, tmp_path):
        path = tmp_path / "state.snap"
        header = write_snapshot(path, "monitor", {"generation": 1})
        assert isinstance(header["crc32"], int)
        assert header["payload_bytes"] > 0
        assert read_snapshot_header(path)["crc32"] == header["crc32"]

    def test_bit_rot_detected_before_unpickling(self, tmp_path):
        path = tmp_path / "rotten.snap"
        write_snapshot(path, "monitor", list(range(100)))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip bits in the last payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="CRC32 mismatch"):
            read_snapshot(path)

    def test_swapped_payload_of_equal_length_detected(self, tmp_path):
        """Length alone is not enough — the checksum catches same-size swaps."""
        a, b = tmp_path / "a.snap", tmp_path / "b.snap"
        write_snapshot(a, "monitor", (1, 2, 3))
        write_snapshot(b, "monitor", (4, 5, 6))
        a_header = a.read_bytes().split(b"\n", 2)
        b_payload = b.read_bytes().split(b"\n", 2)[2]
        a.write_bytes(a_header[0] + b"\n" + a_header[1] + b"\n" + b_payload)
        with pytest.raises(SnapshotError, match="CRC32 mismatch"):
            read_snapshot(a)

    def test_legacy_file_without_checksum_still_loads(self, tmp_path):
        """Files written before the checksum existed carry no crc32 field."""
        path = tmp_path / "legacy.snap"
        header = {"schema": SNAPSHOT_SCHEMA, "kind": "monitor", "meta": {}}
        payload = {"deque": [1.5, 2.5]}
        path.write_bytes(
            SNAPSHOT_MAGIC
            + json.dumps(header).encode()
            + b"\n"
            + pickle.dumps(payload)
        )
        got_header, got_payload = read_snapshot(path)
        assert got_header.get("crc32") is None
        assert got_payload == payload


class TestChunkWal:
    def test_append_and_read(self, tmp_path):
        wal = ChunkWal(tmp_path / "wal.log")
        wal.append_chunk(0, 128, 12.5)
        wal.append_chunk(1, 128, 25.0)
        state = ChunkWal.read(wal.path)
        assert state.checkpoint is None
        assert state.lost_chunks == 2
        assert state.next_chunk_offset == 2
        assert not state.torn_tail

    def test_checkpoint_restarts_the_log(self, tmp_path):
        wal = ChunkWal(tmp_path / "wal.log")
        for index in range(5):
            wal.append_chunk(index, 64, float(index))
        wal.mark_checkpoint(WalCheckpoint(chunk_offset=5, generation=2, stream_time=4.0))
        wal.append_chunk(5, 64, 5.0)
        state = ChunkWal.read(wal.path)
        assert state.checkpoint == WalCheckpoint(5, 2, 4.0)
        assert state.lost_chunks == 1
        assert state.next_chunk_offset == 6
        # The pre-checkpoint records are physically gone (bounded log size).
        assert len(wal.path.read_text().splitlines()) == 3

    def test_torn_tail_is_tolerated(self, tmp_path):
        wal = ChunkWal(tmp_path / "wal.log")
        wal.append_chunk(0, 64, 1.0)
        with open(wal.path, "a") as handle:
            handle.write('{"type": "chunk", "chunk": 1, "obj')  # torn append
        state = ChunkWal.read(wal.path)
        assert state.torn_tail
        assert state.lost_chunks == 1  # only the complete record counts
        assert state.next_chunk_offset == 1

    def test_corrupt_middle_record_is_an_error(self, tmp_path):
        wal = ChunkWal(tmp_path / "wal.log")
        wal.append_chunk(0, 64, 1.0)
        with open(wal.path, "a") as handle:
            handle.write("{broken\n")
            handle.write('{"type": "chunk", "chunk": 1, "objects": 64, "end_time": 2.0}\n')
        with pytest.raises(SnapshotError, match="corrupt WAL record"):
            ChunkWal.read(wal.path)

    def test_unknown_wal_schema_fails_clearly(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text('{"schema": "wal/v9"}\n')
        with pytest.raises(SnapshotSchemaError) as excinfo:
            ChunkWal.read(path)
        assert "wal/v9" in str(excinfo.value)

    def test_unknown_record_type_rejected(self, tmp_path):
        wal = ChunkWal(tmp_path / "wal.log")
        with open(wal.path, "a") as handle:
            handle.write('{"type": "mystery"}\n')
            handle.write('{"type": "chunk", "chunk": 0, "objects": 1, "end_time": 0.0}\n')
        with pytest.raises(SnapshotError, match="unknown WAL record type"):
            ChunkWal.read(wal.path)


class TestServiceManifest:
    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        from repro.state import read_manifest

        with pytest.raises(SnapshotError, match="no service checkpoint"):
            read_manifest(tmp_path)

    def test_corrupt_manifest_json(self, tmp_path):
        from repro.state import read_manifest
        from repro.state.recovery import manifest_path

        manifest_path(tmp_path).write_text("{not json")
        with pytest.raises(SnapshotError, match="corrupt service manifest"):
            read_manifest(tmp_path)

    def test_manifest_missing_field(self, tmp_path):
        from repro.state import MANIFEST_SCHEMA, read_manifest
        from repro.state.recovery import manifest_path

        manifest_path(tmp_path).write_text(json.dumps({"schema": MANIFEST_SCHEMA}))
        with pytest.raises(SnapshotError, match="missing or malformed"):
            read_manifest(tmp_path)

    def test_stream_time_encoding(self):
        from repro.state.recovery import decode_stream_time, encode_stream_time

        assert encode_stream_time(float("-inf")) is None
        assert decode_stream_time(None) == float("-inf")
        assert decode_stream_time(encode_stream_time(12.25)) == 12.25


class TestCheckpointPolicy:
    def test_chunk_trigger(self):
        policy = CheckpointPolicy(every_chunks=4)
        assert not policy.due(3, 10.0, 0.0)
        assert policy.due(4, 10.0, 0.0)
        assert policy.due(9, 10.0, 0.0)

    def test_stream_time_trigger(self):
        policy = CheckpointPolicy(every_stream_seconds=60.0)
        assert not policy.due(5, 59.0, 0.0)
        assert policy.due(5, 60.0, 0.0)
        # Before any checkpoint the reference time is -inf: fire immediately.
        assert policy.due(1, 0.0, float("-inf"))

    def test_either_trigger_fires(self):
        policy = CheckpointPolicy(every_chunks=100, every_stream_seconds=10.0)
        assert policy.due(1, 30.0, 0.0)  # time fired, chunks did not
        assert policy.due(100, 5.0, 0.0)  # chunks fired, time did not

    def test_never_due_with_nothing_new(self):
        policy = CheckpointPolicy(every_chunks=1, every_stream_seconds=0.001)
        assert not policy.due(0, 1e9, 0.0)

    def test_manual_policy(self):
        policy = CheckpointPolicy()
        assert not policy.automatic
        assert not policy.due(10_000, 1e9, float("-inf"))

    def test_round_trip(self):
        policy = CheckpointPolicy(every_chunks=7, every_stream_seconds=2.5)
        assert CheckpointPolicy.from_dict(policy.to_dict()) == policy
        assert CheckpointPolicy.from_dict({}) == CheckpointPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_chunks": 0},
            {"every_chunks": -3},
            {"every_stream_seconds": 0.0},
            {"every_stream_seconds": -1.0},
            {"every_stream_seconds": float("nan")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CheckpointPolicy(**kwargs)
