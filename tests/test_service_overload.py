"""Overload-graceful service: backpressure, shedding, and re-epoching.

Three layers of the overload tier, each with its own contract:

* **Backpressure** — bounded :class:`~repro.service.bus.Subscription`
  queues (block / drop_oldest / evict) bound bus memory whatever the
  consumer does, and ``SurgeService(max_inflight_chunks=)`` bounds the
  ingest tier's buffered backlog through any flash crowd.
* **Load shedding** — queue-depth watermarks flip the service into a
  counted degraded mode with hysteresis; the ``shed`` policy skips whole
  route classes below a priority threshold (never a partial shared window
  group), ``stretch`` defers checkpoints, ``error`` raises the typed
  :class:`~repro.service.overload.OverloadError`.
* **Re-epoching / compaction** — :meth:`SurgeService.compact` merges
  late-registered duplicate queries back into existing shared window
  groups once their windows converge, restoring sharing after churn with
  results **bit-identical** to both the never-churned shared run and the
  unshared oracle, across every executor and through checkpoint/restore.
"""

from __future__ import annotations

import logging
import pickle
import threading
from dataclasses import replace

import pytest

from repro.core.query import SurgeQuery
from repro.service import (
    OverloadConfig,
    OverloadError,
    OverloadStats,
    QuerySpec,
    SurgeService,
)
from repro.service.bus import QueryStats, QueryUpdate, ResultBus, Subscription
from repro.service.overload import OVERLOAD_POLICIES
from repro.state import CheckpointPolicy
from repro.state.recovery import read_manifest
from repro.streams.watermark import WatermarkReorderBuffer

from tests.test_service_robustness import make_clean, make_specs, replay

EXECUTOR_GRID = [("serial", 1), ("thread", 2), ("process", 2)]


def make_update(query_id: str = "q", chunk_index: int = 0, **kw) -> QueryUpdate:
    return QueryUpdate(
        query_id=query_id,
        chunk_index=chunk_index,
        result=None,
        objects_routed=1,
        busy_seconds=0.0,
        **kw,
    )


def grid_specs(priorities: dict[str, int] | None = None) -> list[QuerySpec]:
    """Four queries over two route classes: (concert, 8s) and (parade, 8s)."""
    query = SurgeQuery(1.5, 1.5, window_length=8.0, alpha=0.5)
    specs = [
        QuerySpec(query_id="c1", query=query, keyword="concert", backend="python"),
        QuerySpec(query_id="c2", query=query, keyword="concert", backend="python"),
        QuerySpec(query_id="p1", query=query, keyword="parade", backend="python"),
        QuerySpec(query_id="p2", query=query, keyword="parade", backend="python"),
    ]
    if priorities:
        specs = [
            replace(spec, priority=priorities.get(spec.query_id, 0))
            for spec in specs
        ]
    return specs


# ---------------------------------------------------------------------------
# OverloadConfig / OverloadStats plumbing
# ---------------------------------------------------------------------------
class TestOverloadConfig:
    def test_round_trip(self):
        config = OverloadConfig(
            high_watermark_chunks=6.0,
            low_watermark_chunks=1.5,
            policy="stretch",
            shed_below_priority=3,
            checkpoint_stretch=8,
        )
        assert OverloadConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "kw",
        [
            {"policy": "nope"},
            {"high_watermark_chunks": 0.0},
            {"high_watermark_chunks": 2.0, "low_watermark_chunks": 3.0},
            {"low_watermark_chunks": -1.0},
            {"checkpoint_stretch": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            OverloadConfig(**kw)

    def test_policies_are_closed(self):
        assert set(OVERLOAD_POLICIES) == {"shed", "stretch", "error"}

    def test_stats_round_trip_excludes_live_shed_set(self):
        stats = OverloadStats(
            degraded=True,
            entered_degraded=2,
            exited_degraded=1,
            chunks_shed=7,
            updates_shed=14,
            checkpoints_deferred=3,
            compactions=1,
            queries_compacted=2,
            max_depth_chunks=9.5,
            shedding=["a", "b"],
        )
        loaded = OverloadStats.from_dict(stats.to_dict())
        assert loaded.shedding == []  # recomputed live, never persisted
        assert loaded == replace(stats, shedding=[])


# ---------------------------------------------------------------------------
# Bounded subscriptions (the bus tier)
# ---------------------------------------------------------------------------
class TestSubscriptionBounds:
    def test_drop_oldest_bounds_depth_and_counts(self):
        sub = Subscription(maxsize=3, policy="drop_oldest")
        dropped = []
        for index in range(10):
            dropped.extend(sub._offer(make_update(chunk_index=index)))
        assert sub.depth == 3
        assert sub.peak_depth == 3
        assert sub.dropped == 7 == len(dropped)
        assert [u.chunk_index for u in sub.drain()] == [7, 8, 9]
        assert sub.offered == sub.delivered + sub.dropped + sub.depth

    def test_zero_capacity_drop_oldest_drops_everything(self):
        sub = Subscription(maxsize=0, policy="drop_oldest")
        for index in range(5):
            assert sub._offer(make_update(chunk_index=index)) == ["q"]
        assert sub.depth == 0
        assert sub.dropped == 5
        assert sub.offered == sub.delivered + sub.dropped + sub.depth

    def test_zero_capacity_block_rejected(self):
        with pytest.raises(ValueError, match="zero-capacity"):
            Subscription(maxsize=0, policy="block")

    def test_negative_maxsize_and_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            Subscription(maxsize=-1, policy="drop_oldest")
        with pytest.raises(ValueError, match="policy"):
            Subscription(maxsize=1, policy="latest")

    def test_block_timeout_raises_typed_overload_error(self):
        sub = Subscription(maxsize=1, policy="block", block_timeout=0.01)
        sub._offer(make_update(chunk_index=0))
        with pytest.raises(OverloadError) as excinfo:
            sub._offer(make_update(chunk_index=1))
        assert excinfo.value.depth_chunks == 1.0
        assert isinstance(excinfo.value, RuntimeError)

    def test_block_waits_for_consumer(self):
        sub = Subscription(maxsize=1, policy="block", block_timeout=5.0)
        sub._offer(make_update(chunk_index=0))
        got = []

        def consume():
            got.append(sub.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        sub._offer(make_update(chunk_index=1))  # must unblock via the get
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got[0].chunk_index == 0
        assert [u.chunk_index for u in sub.drain()] == [1]

    def test_evict_detaches_and_counts(self):
        bus = ResultBus()
        laggard = bus.open_subscription(maxsize=1, policy="evict")
        healthy = bus.open_subscription(maxsize=16, policy="block")
        for index in range(4):
            bus.publish([make_update(chunk_index=index)])
        assert laggard.evicted and laggard.closed
        assert bus.evicted_subscribers == 1
        # The healthy subscription keeps receiving after the eviction.
        assert [u.chunk_index for u in healthy.drain()] == [0, 1, 2, 3]
        assert [u.chunk_index for u in laggard.drain()] == [0]

    def test_zero_capacity_evict_evicts_on_first_publish(self):
        bus = ResultBus()
        sub = bus.open_subscription(maxsize=0, policy="evict")
        bus.publish([make_update()])
        assert sub.evicted
        assert bus.evicted_subscribers == 1
        assert bus.max_queue_depth() == 0

    def test_throwing_callback_and_lagging_subscription_coexist(self):
        # A legacy callback that raises and a bounded laggard must neither
        # kill ingestion nor starve each other.
        bus = ResultBus()

        def bomb(update):
            raise RuntimeError("subscriber bug")

        bus.subscribe(bomb)
        laggard = bus.open_subscription(maxsize=2, policy="drop_oldest")
        for index in range(6):
            bus.publish([make_update(chunk_index=index)])
        assert bus.subscriber_errors == 6
        assert laggard.dropped == 4
        assert [u.chunk_index for u in laggard.drain()] == [4, 5]
        assert bus.stats("q").dropped_results == 4

    def test_drop_counters_survive_export_load_round_trip(self):
        bus = ResultBus()
        bus.open_subscription(maxsize=1, policy="drop_oldest")
        for index in range(5):
            bus.publish([make_update(chunk_index=index)])
        assert bus.stats("q").dropped_results == 4
        exported = bus.export_stats()
        fresh = ResultBus()
        fresh.load_stats(exported)
        assert fresh.stats("q").dropped_results == 4
        # And the QueryStats JSON form itself round-trips the new fields.
        stats = QueryStats(dropped_results=3, chunks_shed=2)
        assert QueryStats.from_dict(stats.to_dict()) == stats
        # Old checkpoints without the new fields load as zeros.
        legacy = {"objects_routed": 5, "chunks_processed": 1}
        loaded = QueryStats.from_dict(legacy)
        assert loaded.dropped_results == 0 and loaded.chunks_shed == 0

    def test_unsubscribe_closes_and_detaches(self):
        bus = ResultBus()
        sub = bus.open_subscription(maxsize=4, policy="drop_oldest")
        bus.publish([make_update(chunk_index=0)])
        bus.unsubscribe(sub)
        bus.publish([make_update(chunk_index=1)])
        assert sub.closed
        assert [u.chunk_index for u in sub.drain()] == [0]

    def test_never_draining_subscriber_memory_is_bounded(self):
        # The memory-bound property: a subscriber that never drains cannot
        # make the service buffer more than maxsize updates, over any
        # stream length, and the accounting is exact.
        clean = make_clean(400, seed=61)
        with SurgeService(make_specs("ccs")) as service:
            sub = service.bus.open_subscription(maxsize=4, policy="drop_oldest")
            for _ in service.run(iter(clean), chunk_size=8):
                pass  # never drains the subscription
            assert sub.depth <= 4
            assert sub.peak_depth <= 4
            assert sub.offered == sub.delivered + sub.dropped + sub.depth
            assert sub.offered == 2 * 50  # 2 queries x 50 chunks
            per_query = service.stats().per_query
            assert (
                sum(stats.dropped_results for stats in per_query.values())
                == sub.dropped
            )


# ---------------------------------------------------------------------------
# The ingest-side budget (max_inflight_chunks)
# ---------------------------------------------------------------------------
class TestInflightBudget:
    def test_peak_buffered_bounded_through_flash_crowd(self):
        from repro.streams.faults import FaultInjector

        injector = FaultInjector(
            make_clean(300, seed=67),
            seed=67,
            disorder_fraction=0.2,
            max_disorder=2.0,
            flash_crowd_factor=6.0,
        )
        with SurgeService(
            make_specs("ccs"), max_lateness=50.0, max_inflight_chunks=3
        ) as service:
            for _ in service.run(iter(injector), chunk_size=8):
                pass
            ingest = service.ingest_stats()
        assert ingest.peak_buffered <= 3 * 8
        assert ingest.force_released > 0

    def test_sorted_stream_results_unchanged_by_budget(self):
        # Early release only reorders *held-back* arrivals; on an in-order
        # stream results are bit-identical with or without the budget.
        clean = make_clean(120, seed=71)
        expected, _ = replay(make_specs("ccs"), clean, max_lateness=30.0)
        with SurgeService(
            make_specs("ccs"), max_lateness=30.0, max_inflight_chunks=2
        ) as service:
            for _ in service.run(iter(clean), chunk_size=8):
                pass
            got = service.results()
        assert got == expected

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="max_inflight_chunks"):
            SurgeService(make_specs("ccs"), max_inflight_chunks=0)

    def test_force_release_raises_floor_and_drops_stragglers(self):
        buffer = WatermarkReorderBuffer(max_lateness=100.0)
        objects = make_clean(10, seed=73)
        for obj in objects:
            buffer.push(obj)
        released = buffer.force_release(4)
        assert [o.object_id for o in released] == [0, 1, 2, 3]
        assert buffer.force_released == 4
        # A straggler behind the floor is refused even though the watermark
        # alone would admit it.
        straggler = replace(objects[0], object_id=999)
        assert straggler.timestamp < released[-1].timestamp
        assert buffer.push(straggler) == []
        assert buffer.late_dropped == 1
        # In-order arrivals after the floor are unaffected.
        assert buffer.force_release(0) == []

    def test_force_release_counts_survive_pickle(self):
        buffer = WatermarkReorderBuffer(max_lateness=100.0)
        for obj in make_clean(6, seed=79):
            buffer.push(obj)
        buffer.force_release(2)
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.force_released == 2
        assert clone.counters()["force_released"] == 2
        straggler = replace(make_clean(6, seed=79)[0], object_id=999)
        assert clone.push(straggler) == []  # the floor was pickled too

    def test_old_pickles_default_the_floor(self):
        buffer = WatermarkReorderBuffer(max_lateness=10.0)
        state = dict(buffer.__dict__)
        del state["_floor"]
        del state["force_released"]
        revived = WatermarkReorderBuffer.__new__(WatermarkReorderBuffer)
        revived.__setstate__(state)
        assert revived._floor == float("-inf")
        assert revived.force_released == 0


# ---------------------------------------------------------------------------
# Degraded mode: watermarks, hysteresis, policies
# ---------------------------------------------------------------------------
class TestDegradedMode:
    CONFIG = OverloadConfig(
        high_watermark_chunks=1.0, low_watermark_chunks=0.25, policy="shed"
    )

    def run_overloaded(self, specs, *, config=None, chunk_size=8, count=300):
        """A flash-crowd run whose ingest backlog crosses the watermark."""
        from repro.streams.faults import FaultInjector

        injector = FaultInjector(
            make_clean(count, seed=83),
            seed=83,
            flash_crowd_factor=8.0,
        )
        service = SurgeService(
            specs,
            max_lateness=60.0,
            overload=config if config is not None else self.CONFIG,
        )
        with service:
            for _ in service.run(iter(injector), chunk_size=chunk_size):
                pass
            return (
                service.results(),
                service.overload_stats(),
                service.stats().per_query,
            )

    def test_hysteresis_transitions_are_counted(self):
        _, overload, _ = self.run_overloaded(grid_specs())
        assert overload.entered_degraded >= 1
        assert overload.exited_degraded == overload.entered_degraded
        assert overload.max_depth_chunks >= self.CONFIG.high_watermark_chunks
        assert not overload.degraded  # drained by end of stream

    def test_uniform_priorities_shed_nothing(self):
        # The default threshold is the highest priority present: with every
        # query at the same priority there is no lower tier to shed.
        _, overload, per_query = self.run_overloaded(grid_specs())
        assert overload.entered_degraded >= 1
        assert overload.chunks_shed == 0
        assert all(stats.chunks_shed == 0 for stats in per_query.values())

    def test_shed_respects_priority_tiers(self):
        specs = grid_specs({"c1": 0, "c2": 0, "p1": 5, "p2": 5})
        _, overload, per_query = self.run_overloaded(specs)
        assert overload.chunks_shed > 0
        assert per_query["c1"].chunks_shed > 0
        assert per_query["c1"].chunks_shed == per_query["c2"].chunks_shed
        assert per_query["p1"].chunks_shed == 0
        assert per_query["p2"].chunks_shed == 0
        assert overload.updates_shed == sum(
            stats.chunks_shed for stats in per_query.values()
        )

    def test_partial_route_class_is_never_shed(self):
        # c1 is below the threshold but its route-class partner c2 is not:
        # shedding only c1 would desync their shared window group, so the
        # whole class stays live.
        specs = grid_specs({"c1": 0, "c2": 5, "p1": 5, "p2": 5})
        _, overload, per_query = self.run_overloaded(specs)
        assert overload.entered_degraded >= 1
        assert all(stats.chunks_shed == 0 for stats in per_query.values())

    def test_shedding_leaves_survivors_bit_identical(self):
        # The surviving queries' results must be exactly what a run without
        # the overload tier produces — shedding is invisible to survivors.
        specs = grid_specs({"c1": 0, "c2": 0, "p1": 5, "p2": 5})
        results, overload, _ = self.run_overloaded(specs)
        from repro.streams.faults import FaultInjector

        injector = FaultInjector(
            make_clean(300, seed=83), seed=83, flash_crowd_factor=8.0
        )
        expected, _ = replay(specs, injector.materialize(), max_lateness=60.0)
        assert overload.chunks_shed > 0
        assert results["p1"] == expected["p1"]
        assert results["p2"] == expected["p2"]

    def test_explicit_threshold_overrides_default(self):
        config = replace(self.CONFIG, shed_below_priority=10)
        specs = grid_specs({"c1": 0, "c2": 0, "p1": 5, "p2": 5})
        _, overload, per_query = self.run_overloaded(specs, config=config)
        # Everything is below 10, so every route class sheds.
        assert all(stats.chunks_shed > 0 for stats in per_query.values())
        assert overload.chunks_shed > 0

    def test_error_policy_raises_typed_error(self):
        config = replace(self.CONFIG, policy="error")
        with pytest.raises(OverloadError) as excinfo:
            self.run_overloaded(grid_specs(), config=config)
        assert excinfo.value.depth_chunks >= self.CONFIG.high_watermark_chunks

    def test_stretch_policy_defers_checkpoints(self, tmp_path):
        from repro.streams.faults import FaultInjector

        config = replace(self.CONFIG, policy="stretch", checkpoint_stretch=16)
        injector = FaultInjector(
            make_clean(300, seed=83), seed=83, flash_crowd_factor=8.0
        )
        with SurgeService(
            grid_specs(),
            max_lateness=60.0,
            overload=config,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        ) as service:
            for _ in service.run(iter(injector), chunk_size=8):
                pass
            overload = service.overload_stats()
        assert overload.entered_degraded >= 1
        assert overload.checkpoints_deferred > 0
        assert overload.chunks_shed == 0  # stretch never sheds

    def test_queue_depth_tracks_bus_backlog_too(self):
        clean = make_clean(60, seed=89)
        with SurgeService(grid_specs(), overload=self.CONFIG) as service:
            sub = service.bus.open_subscription(maxsize=64, policy="drop_oldest")
            for _ in service.run(iter(clean), chunk_size=8):
                pass
            # 8 chunks (last one short) x 4 queries buffered, never
            # drained: depth in chunks is the per-query backlog.
            assert sub.depth == 8 * 4
            assert service.queue_depth_chunks() == pytest.approx(8.0)


# ---------------------------------------------------------------------------
# Re-epoching / compaction after churn
# ---------------------------------------------------------------------------
class TestCompaction:
    CHUNK = 8

    def churn_replay(
        self,
        algorithm: str,
        *,
        shared_plan: bool = True,
        compact: bool = True,
        executor: str = "serial",
        shards: int = 1,
        compact_every: int | None = None,
        count: int = 150,
    ):
        """Run with q "late" added mid-stream; optionally compact at the end.

        The late query is an exact duplicate of "kw"'s route class, so once
        its window content converges a compaction pass can re-epoch it into
        the veteran's shared group.
        """
        clean = make_clean(count, seed=97)
        specs = make_specs(algorithm)
        late = replace(specs[0], query_id="late")
        service = SurgeService(
            specs,
            shared_plan=shared_plan,
            executor=executor,
            shards=shards,
            compact_every_chunks=compact_every,
        )
        with service:
            chunks = 0
            for _ in service.run(iter(clean), chunk_size=self.CHUNK):
                chunks += 1
                if chunks == 3:
                    service.add_query(late)
            merged = service.compact() if compact else 0
            return service.results(), merged, service.overload_stats()

    def test_late_duplicate_merges_and_results_are_bit_identical(self):
        results, merged, overload = self.churn_replay("ccs")
        assert merged == 1
        assert overload.compactions == 1
        assert overload.queries_compacted == 1
        # Compaction must not change any result: compare against the same
        # churned run without the compact pass...
        no_compact, _, _ = self.churn_replay("ccs", compact=False)
        assert results == no_compact
        # ...and against the unshared oracle (every query independent).
        unshared, _, _ = self.churn_replay("ccs", shared_plan=False, compact=False)
        assert results == unshared

    @pytest.mark.parametrize("executor, shards", EXECUTOR_GRID)
    def test_compaction_identity_across_executors(self, executor, shards):
        expected, merged, _ = self.churn_replay("ccs")
        got, merged_too, _ = self.churn_replay(
            "ccs", executor=executor, shards=shards
        )
        assert merged == merged_too == 1
        assert got == expected

    @pytest.mark.parametrize("algorithm", ["gaps", "kgaps"])
    def test_impure_exact_duplicate_never_aliases_a_monitor(self, algorithm):
        # Grid-family detectors carry path-dependent float residue, so a
        # late exact duplicate may NOT adopt the veteran's monitor — its
        # unit key collides with the veteran's, and restamping it would
        # alias the two detectors at the next plan rebuild.  It stays
        # unmerged, and results stay exact.
        results, merged, _ = self.churn_replay(algorithm)
        assert merged == 0
        unshared, _, _ = self.churn_replay(
            algorithm, shared_plan=False, compact=False
        )
        assert results == unshared

    @pytest.mark.parametrize("algorithm", ["gaps", "kgaps"])
    def test_impure_compatible_query_merges_at_window_tier(self, algorithm):
        # A *compatible* late query (same route class, different rectangle,
        # hence its own detector unit) re-joins the veteran's shared window
        # group: windows are aliased, monitors stay private — exact for any
        # algorithm, because its own detector continues over an
        # element-wise-equal window object.
        clean = make_clean(150, seed=97)
        specs = make_specs(algorithm)
        compatible = replace(
            specs[0],
            query_id="late",
            query=replace(specs[0].query, rect_width=2.0, rect_height=2.0),
        )

        def run(shared_plan, compact):
            with SurgeService(specs, shared_plan=shared_plan) as service:
                chunks = 0
                for _ in service.run(iter(clean), chunk_size=self.CHUNK):
                    chunks += 1
                    if chunks == 3:
                        service.add_query(compatible)
                merged = service.compact() if compact else 0
                return service.results(), merged

        results, merged = run(True, True)
        assert merged == 1
        unshared, _ = run(False, False)
        assert results == unshared

    def test_compact_is_idempotent(self):
        clean = make_clean(150, seed=97)
        specs = make_specs("ccs")
        late = replace(specs[0], query_id="late")
        with SurgeService(specs) as service:
            chunks = 0
            for _ in service.run(iter(clean), chunk_size=self.CHUNK):
                chunks += 1
                if chunks == 3:
                    service.add_query(late)
            assert service.compact() == 1
            assert service.compact() == 0  # nothing left to merge
            overload = service.overload_stats()
            assert overload.compactions == 2
            assert overload.queries_compacted == 1

    def test_compact_without_churn_is_a_no_op(self):
        clean = make_clean(60, seed=101)
        with SurgeService(make_specs("ccs")) as service:
            for _ in service.run(iter(clean), chunk_size=self.CHUNK):
                pass
            before = service.results()
            assert service.compact() == 0
            assert service.results() == before

    def test_divergent_windows_do_not_merge(self):
        # A query added mid-stream whose window still holds different
        # content than the veteran's must NOT merge: with a window longer
        # than the remaining stream, the veteran retains objects the late
        # query never saw.
        clean = make_clean(40, seed=103)
        query = SurgeQuery(1.5, 1.5, window_length=10_000.0, alpha=0.5)
        specs = [
            QuerySpec(query_id="kw", query=query, keyword="concert", backend="python"),
        ]
        late = replace(specs[0], query_id="late")
        with SurgeService(specs) as service:
            chunks = 0
            for _ in service.run(iter(clean), chunk_size=self.CHUNK):
                chunks += 1
                if chunks == 2:
                    service.add_query(late)
            assert service.compact() == 0

    def test_auto_compaction_restores_sharing(self):
        results, _, overload = self.churn_replay(
            "ccs", compact=False, compact_every=4
        )
        assert overload.compactions > 0
        assert overload.queries_compacted == 1
        manual, _, _ = self.churn_replay("ccs")
        assert results == manual

    def test_auto_compaction_is_exactly_once_across_restore(self, tmp_path):
        # Compaction fires at fixed chunk offsets, so a crash + replay
        # re-runs the same deterministic passes: counters and results must
        # match the uninterrupted run exactly.
        clean = make_clean(150, seed=97)
        specs = make_specs("ccs")
        late = replace(specs[0], query_id="late")

        expected, _, ref_overload = self.churn_replay(
            "ccs", compact=False, compact_every=4
        )

        doomed = SurgeService(
            specs,
            compact_every_chunks=4,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=3),
        )
        chunks = 0
        for _ in doomed.run(iter(clean), chunk_size=self.CHUNK):
            chunks += 1
            if chunks == 3:
                doomed.add_query(late)
            if chunks == 10:
                break  # crash: no close, no final checkpoint

        restored = SurgeService.restore(tmp_path / "ckpt")
        assert restored.compact_every_chunks == 4
        with restored:
            for _ in restored.run(
                iter(clean),
                chunk_size=self.CHUNK,
                start_offset=restored.chunk_offset,
            ):
                pass
            got = restored.results()
            got_overload = restored.overload_stats()
        assert got == expected
        assert got_overload.compactions == ref_overload.compactions
        assert got_overload.queries_compacted == ref_overload.queries_compacted

    def test_compact_every_validation(self):
        with pytest.raises(ValueError, match="compact_every_chunks"):
            SurgeService(make_specs("ccs"), compact_every_chunks=0)


# ---------------------------------------------------------------------------
# Durability of the overload tier
# ---------------------------------------------------------------------------
class TestOverloadDurability:
    CONFIG = OverloadConfig(
        high_watermark_chunks=1.0, low_watermark_chunks=0.25, policy="shed"
    )

    def test_manifest_records_and_restores_the_tier(self, tmp_path):
        from repro.streams.faults import FaultInjector

        specs = grid_specs({"c1": 0, "c2": 0, "p1": 5, "p2": 5})
        injector = FaultInjector(
            make_clean(300, seed=83), seed=83, flash_crowd_factor=8.0
        )
        doomed = SurgeService(
            specs,
            max_lateness=60.0,
            overload=self.CONFIG,
            max_inflight_chunks=16,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=4),
        )
        chunks = 0
        for _ in doomed.run(iter(injector), chunk_size=8):
            chunks += 1
            if chunks == 20:
                break

        manifest = read_manifest(tmp_path / "ckpt")
        assert manifest.overload is not None
        assert manifest.overload["max_inflight_chunks"] == 16
        config = OverloadConfig.from_dict(manifest.overload["config"])
        assert config == self.CONFIG

        restored = SurgeService.restore(tmp_path / "ckpt")
        assert restored.overload_config == self.CONFIG
        assert restored.max_inflight_chunks == 16
        # The degraded flag and counters continue, not restart.
        recorded = OverloadStats.from_dict(manifest.overload["stats"])
        got = restored.overload_stats()
        assert got.entered_degraded == recorded.entered_degraded
        assert got.chunks_shed == recorded.chunks_shed
        assert restored.degraded == recorded.degraded
        restored.close()

    def test_resume_sheds_exactly_like_the_uninterrupted_run(self, tmp_path):
        from repro.streams.faults import FaultInjector

        specs = grid_specs({"c1": 0, "c2": 0, "p1": 5, "p2": 5})

        def injector():
            return FaultInjector(
                make_clean(300, seed=83), seed=83, flash_crowd_factor=8.0
            )

        with SurgeService(
            specs, max_lateness=60.0, overload=self.CONFIG
        ) as service:
            for _ in service.run(iter(injector()), chunk_size=8):
                pass
            expected = service.results()
            expected_overload = service.overload_stats()

        doomed = SurgeService(
            specs,
            max_lateness=60.0,
            overload=self.CONFIG,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=4),
        )
        chunks = 0
        for _ in doomed.run(iter(injector()), chunk_size=8):
            chunks += 1
            if chunks == 15:
                break  # crash mid-shedding

        restored = SurgeService.restore(tmp_path / "ckpt")
        with restored:
            for _ in restored.run(
                iter(injector()), chunk_size=8, start_offset=restored.chunk_offset
            ):
                pass
            got = restored.results()
            got_overload = restored.overload_stats()
        assert got == expected
        assert got_overload.chunks_shed == expected_overload.chunks_shed
        assert got_overload.updates_shed == expected_overload.updates_shed
        assert got_overload.entered_degraded == expected_overload.entered_degraded

    def test_old_manifest_without_overload_loads_with_tier_off(self, tmp_path):
        clean = make_clean(40, seed=107)
        with SurgeService(
            make_specs("ccs"),
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        ) as service:
            for _ in service.run(iter(clean), chunk_size=8):
                pass
            service.checkpoint()
        manifest = read_manifest(tmp_path / "ckpt")
        assert manifest.overload is None  # tier unconfigured -> not recorded
        restored = SurgeService.restore(tmp_path / "ckpt")
        assert restored.overload_config is None
        assert restored.max_inflight_chunks is None
        restored.close()


# ---------------------------------------------------------------------------
# Quarantine spill hardening
# ---------------------------------------------------------------------------
class TestQuarantineSpillHardening:
    def test_unwritable_quarantine_dir_counts_and_continues(
        self, tmp_path, caplog
    ):
        from repro.streams.faults import FaultInjector

        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the quarantine dir should go")
        injector = FaultInjector(
            make_clean(60, seed=109),
            seed=109,
            poison_fraction=0.1,
            poison_kinds=("nan_timestamp", "nan_x"),
        )
        with caplog.at_level(logging.WARNING, logger="repro.service.service"):
            with SurgeService(
                make_specs("ccs"),
                max_lateness=2.0,
                quarantine_dir=blocker,  # mkdir/open will fail: it's a file
            ) as service:
                for _ in service.run(iter(injector), chunk_size=8):
                    pass
                ingest = service.ingest_stats()
                results = service.results()
        assert ingest.quarantined == injector.poisoned > 0
        assert ingest.spill_errors == injector.poisoned
        # Results are what a healthy-quarantine run produces.
        expected, _ = replay(
            make_specs("ccs"), injector.reference(), max_lateness=2.0
        )
        assert results == expected
        # The failure is warned exactly once, not once per record.
        warnings = [
            record
            for record in caplog.records
            if "quarantine" in record.getMessage()
        ]
        assert len(warnings) == 1

    def test_spill_errors_survive_checkpoint_round_trip(self, tmp_path):
        from repro.streams.faults import FaultInjector

        blocker = tmp_path / "blocker"
        blocker.write_text("")
        injector = FaultInjector(
            make_clean(60, seed=109),
            seed=109,
            poison_fraction=0.1,
            poison_kinds=("nan_timestamp",),
        )
        with SurgeService(
            make_specs("ccs"),
            max_lateness=2.0,
            quarantine_dir=blocker,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_policy=CheckpointPolicy(every_chunks=2),
        ) as service:
            for _ in service.run(iter(injector), chunk_size=8):
                pass
            service.checkpoint()
            spilled = service.ingest_stats().spill_errors
        assert spilled > 0
        restored = SurgeService.restore(tmp_path / "ckpt", attach=False)
        assert restored.ingest_stats().spill_errors == spilled
        restored.close()


# ---------------------------------------------------------------------------
# Spec priority plumbing
# ---------------------------------------------------------------------------
class TestSpecPriority:
    def test_priority_round_trips_and_defaults(self):
        spec = make_specs("ccs")[0]
        assert spec.priority == 0
        assert "priority" not in spec.to_dict()  # default stays out of JSON
        ranked = replace(spec, priority=7)
        record = ranked.to_dict()
        assert record["priority"] == 7
        assert QuerySpec.from_dict(record).priority == 7
        assert QuerySpec.from_dict(spec.to_dict()).priority == 0

    def test_priority_does_not_affect_routing_or_results(self):
        clean = make_clean(60, seed=113)
        plain = make_specs("ccs")
        ranked = [replace(spec, priority=9) for spec in plain]
        expected, _ = replay(plain, clean)
        got, _ = replay(ranked, clean)
        assert got == expected
