"""Bus guard rails: self-block detection, monotonic lag, filtered fan-out.

Three regressions pinned here:

* a ``policy="block"`` subscription with no ``block_timeout`` used to be
  able to deadlock a single-threaded caller that both publishes and
  drains — now it raises a typed
  :class:`~repro.service.bus.SubscriptionSelfBlockError` naming the
  subscription instead of hanging the ingestion path;
* result-lag accounting must come from a **monotonic** clock: a
  wall-clock jump (NTP step, DST, a VM resume) while a chunk is in
  flight must never produce negative or absurd ``lag_seconds``;
* a ``query_ids``-filtered subscription must keep the conservation law
  ``offered == delivered + dropped + depth`` over the *filtered* updates
  alone — bypassed updates are not offered.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.query import SurgeQuery
from repro.service import (
    QuerySpec,
    SubscriptionSelfBlockError,
    SurgeService,
)
from repro.service.bus import QueryUpdate, ResultBus, Subscription
from repro.streams.objects import SpatialObject


def make_update(query_id: str, chunk_index: int = 0) -> QueryUpdate:
    return QueryUpdate(
        query_id=query_id,
        chunk_index=chunk_index,
        result=None,
        objects_routed=1,
        busy_seconds=0.0,
    )


def make_stream(count: int) -> list[SpatialObject]:
    return [
        SpatialObject(
            x=1.0, y=1.0, timestamp=float(index), weight=1.0, object_id=index
        )
        for index in range(count)
    ]


def make_spec(query_id: str = "q") -> QuerySpec:
    return QuerySpec(
        query_id=query_id,
        query=SurgeQuery(1.5, 1.5, window_length=8.0, alpha=0.5),
        algorithm="ccs",
        backend="python",
    )


class TestSelfBlockDetection:
    def test_single_threaded_publisher_consumer_raises_typed(self):
        bus = ResultBus()
        subscription = bus.open_subscription(
            maxsize=2, policy="block", name="dashboard"
        )
        # Establish this thread as the subscription's only consumer, then
        # fill the queue: the next publish would wait forever for the very
        # thread that is publishing.
        bus.publish([make_update("q", 0)])
        assert subscription.get(timeout=1) is not None
        bus.publish([make_update("q", 1), make_update("q", 2)])
        with pytest.raises(SubscriptionSelfBlockError) as excinfo:
            bus.publish([make_update("q", 3)])
        assert excinfo.value.subscription_name == "dashboard"
        assert "dashboard" in str(excinfo.value)

    def test_anonymous_subscription_named_in_error(self):
        subscription = Subscription(maxsize=1, policy="block")
        subscription.drain()  # this thread becomes the only consumer
        assert subscription._offer(make_update("q", 0)) == []
        with pytest.raises(SubscriptionSelfBlockError) as excinfo:
            subscription._offer(make_update("q", 1))
        assert excinfo.value.subscription_name == "<anonymous>"

    def test_no_false_positive_with_a_real_consumer_thread(self):
        subscription = Subscription(maxsize=1, policy="block", name="live")
        consumed: list[QueryUpdate] = []
        stop = threading.Event()

        def consume():
            while not stop.is_set():
                update = subscription.get(timeout=0.05)
                if update is not None:
                    consumed.append(update)

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            # Another thread is draining: the publisher may block briefly
            # but must never raise, even with the queue momentarily full.
            for index in range(20):
                assert subscription._offer(make_update("q", index)) == []
        finally:
            stop.set()
            thread.join()
        assert len(consumed) + subscription.depth == 20

    def test_block_timeout_still_overloads_not_self_blocks(self):
        from repro.service.overload import OverloadError

        subscription = Subscription(
            maxsize=1, policy="block", block_timeout=0.05, name="timed"
        )
        subscription.drain()
        assert subscription._offer(make_update("q", 0)) == []
        # A bounded wait cannot deadlock; it times out into the existing
        # typed OverloadError instead.
        with pytest.raises(OverloadError):
            subscription._offer(make_update("q", 1))

    def test_untouched_subscription_does_not_trip(self):
        # Nobody has ever consumed: a pump thread may be about to start,
        # so the publisher must wait (bounded here by closing from aside).
        subscription = Subscription(maxsize=1, policy="block", name="fresh")
        assert subscription._offer(make_update("q", 0)) == []
        closer = threading.Timer(0.1, subscription.close)
        closer.start()
        try:
            assert subscription._offer(make_update("q", 1)) == []
        finally:
            closer.cancel()


class TestMonotonicLag:
    def test_wall_clock_jump_does_not_corrupt_lag(self, monkeypatch):
        # Simulate an NTP step: time.time() jumps backwards an hour on
        # every call.  Lag accounting must be sourced from a monotonic
        # clock, so per-query lag stays small and non-negative.
        real_time = time.time()
        calls = {"n": 0}

        def jumpy_time() -> float:
            calls["n"] += 1
            return real_time + (-3600.0 if calls["n"] % 2 else 3600.0)

        monkeypatch.setattr(time, "time", jumpy_time)
        with SurgeService([make_spec()]) as service:
            subscription = service.bus.open_subscription(
                maxsize=64, policy="drop_oldest"
            )
            for _ in service.run(make_stream(24), chunk_size=4):
                pass
            stats = service.stats().per_query["q"]
            assert 0.0 <= stats.last_lag_seconds < 60.0
            assert 0.0 <= stats.max_lag_seconds < 60.0
            for update in subscription.drain():
                assert 0.0 <= update.lag_seconds < 60.0

    def test_lag_is_positive_and_ordered(self):
        with SurgeService([make_spec()]) as service:
            for _ in service.run(make_stream(8), chunk_size=4):
                pass
            stats = service.stats().per_query["q"]
            assert stats.max_lag_seconds >= stats.last_lag_seconds >= 0.0


class TestQueryFilter:
    def test_filtered_updates_are_not_offered(self):
        bus = ResultBus()
        watched = bus.open_subscription(
            maxsize=8, policy="drop_oldest", query_ids=["a"]
        )
        everything = bus.open_subscription(maxsize=8, policy="drop_oldest")
        for index in range(3):
            bus.publish([make_update("a", index), make_update("b", index)])
        assert watched.offered == 3
        assert everything.offered == 6
        assert [update.query_id for update in watched.drain()] == ["a"] * 3

    def test_conservation_holds_over_filtered_updates(self):
        bus = ResultBus()
        subscription = bus.open_subscription(
            maxsize=2, policy="drop_oldest", query_ids=["a"]
        )
        for index in range(6):
            bus.publish([make_update("a", index), make_update("b", index)])
        counters = subscription.counters()
        assert counters["offered"] == 6
        assert (
            counters["offered"]
            == counters["delivered"] + counters["dropped"] + counters["depth"]
        )
        subscription.drain()
        counters = subscription.counters()
        assert (
            counters["offered"]
            == counters["delivered"] + counters["dropped"] + counters["depth"]
        )

    def test_service_level_filter(self):
        specs = [make_spec("a"), make_spec("b")]
        with SurgeService(specs) as service:
            subscription = service.bus.open_subscription(
                maxsize=64, policy="drop_oldest", query_ids=["b"]
            )
            for _ in service.run(make_stream(12), chunk_size=4):
                pass
            updates = subscription.drain()
            assert updates
            assert {update.query_id for update in updates} == {"b"}
