"""Unit tests for the table / series formatting helpers."""

from repro.evaluation.tables import format_paper_expectation, format_series, format_table


class TestFormatTable:
    def test_contains_title_columns_and_rows(self):
        text = format_table(
            "Table I",
            ["dataset", "objects", "rate"],
            [["UK", 1000, 5747.0], ["US", 2000, 16802.0]],
        )
        assert text.splitlines()[0] == "Table I"
        assert "dataset" in text
        assert "UK" in text
        assert "1.68e+04" in text or "16802" in text or "1.68e+4" in text

    def test_alignment_uses_widest_cell(self):
        text = format_table("T", ["a"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        # All data lines have the same width.
        assert len(lines[2]) == len(lines[3]) or lines[2].startswith("-")

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[0.123456789]], value_format="{:.2f}")
        assert "0.12" in text

    def test_empty_rows(self):
        text = format_table("T", ["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_one_line_per_point(self):
        text = format_series(
            "Figure 5(a)",
            "window",
            {"CCS": {60: 12.5, 300: 40.0}, "Base": {60: 100.0}},
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 5(a)"
        assert len(lines) == 4
        assert any("CCS" in line and "window=60" in line for line in lines)
        assert any("Base" in line for line in lines)

    def test_value_format(self):
        text = format_series("F", "x", {"s": {1: 3.14159}}, value_format="{:.1f}")
        assert "3.1" in text


class TestPaperExpectation:
    def test_prefix(self):
        note = format_paper_expectation("CCS is fastest")
        assert note.strip().startswith("[paper expectation]")
        assert "CCS is fastest" in note
