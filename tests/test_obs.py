"""Unit and integration tests for the tracing tier (``repro.obs``).

Covers the flight recorder's bounds and pickling, the tracer's
disabled-path contract, the thread-local ``activate`` override, the
Chrome ``trace_event`` export, span conservation through the service
(every chunk produces exactly one ``bus.publish`` span and one
``route.bucket`` span per shard), the slow-chunk detector, recorder
survival across checkpoint/restore, the structured JSON log formatter,
and the busy-seconds accounting invariant (per-chunk busy never exceeds
the dispatch wall time; exact under a fake clock).
"""

from __future__ import annotations

import io
import itertools
import json
import logging
import pickle
import threading
import time as _time
from time import perf_counter

import pytest

from tests.helpers import make_objects
from repro.core.query import SurgeQuery
from repro.obs import (
    DEFAULT_RING_SIZE,
    HISTOGRAM_BOUNDS,
    STAGES,
    FlightRecorder,
    JsonLogFormatter,
    StageAggregate,
    Tracer,
    activate,
    chrome_trace_events,
    current,
    enable_json_logging,
    format_stage_table,
    install,
    write_chrome_trace,
)
from repro.service import QuerySpec, SurgeService
from repro.service.shards import ShardState


def spec(query_id="q", keyword=None, **query_kwargs) -> QuerySpec:
    defaults = dict(rect_width=1.0, rect_height=1.0, window_length=50.0)
    defaults.update(query_kwargs)
    return QuerySpec(
        query_id=query_id,
        query=SurgeQuery(**defaults),
        keyword=keyword,
        backend="python",
    )


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends with no process-global tracer."""
    install(None)
    yield
    install(None)


class TestStageAggregate:
    def test_observe_updates_count_total_min_max(self):
        aggregate = StageAggregate()
        for seconds in (0.002, 0.0005, 0.03):
            aggregate.observe(seconds)
        data = aggregate.to_dict()
        assert data["count"] == 3
        assert data["total_seconds"] == pytest.approx(0.0325)
        assert data["min_seconds"] == pytest.approx(0.0005)
        assert data["max_seconds"] == pytest.approx(0.03)

    def test_buckets_are_non_cumulative_log_ladder(self):
        aggregate = StageAggregate()
        # One observation per decade rung, plus one past the last bound.
        aggregate.observe(2e-5)   # (1e-5, 2.5e-5]
        aggregate.observe(2e-3)   # (1e-3, 2.5e-3]
        aggregate.observe(99.0)   # +Inf overflow bucket
        assert len(aggregate.buckets) == len(HISTOGRAM_BOUNDS) + 1
        assert sum(aggregate.buckets) == 3
        assert aggregate.buckets[-1] == 1  # the 99 s observation

    def test_dict_round_trip_and_merge(self):
        a = StageAggregate()
        b = StageAggregate()
        a.observe(0.001)
        b.observe(0.5)
        restored = StageAggregate.from_dict(a.to_dict())
        assert restored.to_dict() == a.to_dict()
        a.merge(b)
        assert a.count == 2
        assert a.max == pytest.approx(0.5)
        assert a.min == pytest.approx(0.001)
        assert sum(a.buckets) == 2

    def test_empty_aggregate_reports_zero_min(self):
        assert StageAggregate().to_dict()["min_seconds"] == 0.0


class TestFlightRecorder:
    def test_ring_is_bounded_and_oldest_first(self):
        recorder = FlightRecorder(ring_size=8)
        for index in range(20):
            recorder.record(("settle", float(index), 0.001, None, index, None))
        spans = recorder.spans()
        assert len(spans) == 8
        assert [span[4] for span in spans] == list(range(12, 20))
        # Aggregates keep counting past the ring bound.
        assert recorder.stage_stats()["settle"]["count"] == 20

    def test_rejects_non_positive_ring(self):
        with pytest.raises(ValueError, match="ring_size"):
            FlightRecorder(ring_size=0)

    def test_drain_spans_empties_the_ring_but_not_the_aggregates(self):
        recorder = FlightRecorder()
        recorder.record(("settle", 0.0, 0.001, None, 0, None))
        assert len(recorder.drain_spans()) == 1
        assert recorder.spans() == []
        assert recorder.stage_stats()["settle"]["count"] == 1

    def test_slow_chunk_capture_is_bounded_and_counted(self):
        recorder = FlightRecorder(slow_chunk_capacity=2)
        for index in range(5):
            count = recorder.record_slow_chunk({"chunk_index": index})
            assert count == index + 1
        assert recorder.slow_chunk_count == 5
        kept = recorder.slow_chunks()
        assert [record["chunk_index"] for record in kept] == [3, 4]

    def test_pickle_round_trip(self):
        recorder = FlightRecorder(ring_size=16)
        recorder.record(("sweep.python", 1.0, 0.002, "shard0", 3, {"rects": 7}))
        recorder.record_slow_chunk({"chunk_index": 3, "wall_seconds": 0.5})
        clone = pickle.loads(pickle.dumps(recorder))
        assert clone.spans() == recorder.spans()
        assert clone.stage_stats() == recorder.stage_stats()
        assert clone.slow_chunk_count == 1
        # The rebuilt lock still serialises writes.
        clone.record(("settle", 2.0, 0.001, None, 4, None))
        assert clone.stage_stats()["settle"]["count"] == 1


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("settle", 0.0, 1.0)
        with tracer.span("checkpoint"):
            pass
        assert tracer.recorder.spans() == []
        assert tracer.stage_stats() == {}

    def test_record_and_span_context_manager(self):
        tracer = Tracer(enabled=True)
        tracer.record("settle", 1.0, 1.5, lane="bus", chunk=2, meta={"n": 1})
        with tracer.span("checkpoint", meta={"generation": 1}):
            pass
        spans = tracer.recorder.spans()
        assert spans[0] == ("settle", 1.0, 0.5, "bus", 2, {"n": 1})
        stage, _, duration, lane, chunk, meta = spans[1]
        assert stage == "checkpoint"
        assert duration >= 0.0
        assert meta == {"generation": 1}

    def test_rejects_negative_slow_chunk_threshold(self):
        with pytest.raises(ValueError, match="slow_chunk_threshold"):
            Tracer(slow_chunk_threshold=-1.0)

    def test_default_ring_size(self):
        assert Tracer().recorder.ring_size == DEFAULT_RING_SIZE

    def test_taxonomy_covers_the_pipeline(self):
        # The documented stage names the built-in call sites use.
        for stage in (
            "ingest.reorder", "route.bucket", "window.observe",
            "sweep.python", "settle", "checkpoint", "bus.publish",
            "server.pump", "wire.encode", "wire.decode",
        ):
            assert stage in STAGES


class TestCurrentTracer:
    def test_install_and_clear(self):
        tracer = Tracer()
        install(tracer)
        assert current() is tracer
        install(None)
        assert current() is None

    def test_activate_overrides_thread_locally(self):
        global_tracer = Tracer()
        shard_tracer = Tracer()
        install(global_tracer)
        seen_inside = {}

        def worker():
            with activate(shard_tracer):
                seen_inside["worker"] = current()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen_inside["worker"] is shard_tracer
        # The override never leaked to this thread.
        assert current() is global_tracer

    def test_activate_restores_previous_override(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None


class TestChromeExport:
    def test_events_are_rebased_and_laned(self):
        spans = [
            ("route.bucket", 10.0, 0.001, "shard0", 0, None),
            ("settle", 10.002, 0.003, "shard1", 0, {"queries": 2}),
            ("bus.publish", 10.006, 0.0005, "bus", 0, None),
        ]
        payload = chrome_trace_events(spans)
        events = payload["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(complete) == 3
        assert min(event["ts"] for event in complete) == 0.0
        assert complete[1]["args"] == {"chunk": 0, "queries": 2}
        assert complete[0]["cat"] == "route"
        lanes = {event["args"]["name"]: event["tid"] for event in metadata}
        assert set(lanes) == {"shard0", "shard1", "bus"}
        # One distinct tid per lane, matching the complete events.
        assert {event["tid"] for event in complete} == set(lanes.values())

    def test_write_chrome_trace_round_trips(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(("settle", 0.0, 0.001, None, 0, None))
        out = tmp_path / "nested" / "trace.json"
        assert write_chrome_trace(out, recorder) == 1
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"][0]["name"] == "settle"

    def test_format_stage_table(self):
        recorder = FlightRecorder()
        recorder.record(("settle", 0.0, 0.002, None, 0, None))
        table = format_stage_table(recorder.stage_stats())
        assert "settle" in table and "count" in table
        assert format_stage_table({}) == "no spans recorded"


class TestServiceTracing:
    def _run_service(self, executor: str, chunks: int = 5, shards: int = 2):
        tracer = Tracer(enabled=True)
        objects = make_objects(chunks * 40, seed=3)
        service = SurgeService(
            [spec("a"), spec("b", rect_width=2.0)],
            shards=shards,
            executor=executor,
            tracer=tracer,
        )
        with service:
            for start in range(0, len(objects), 40):
                service.push_many(objects[start : start + 40])
        return tracer, service

    def test_span_conservation_serial(self):
        chunks, shards = 5, 2
        tracer, _ = self._run_service("serial", chunks=chunks, shards=shards)
        stats = tracer.stage_stats()
        # Exactly one publish per chunk and one routing pass per shard per
        # chunk — span counts conserve against the work actually done.
        assert stats["bus.publish"]["count"] == chunks
        assert stats["route.bucket"]["count"] == chunks * shards
        assert stats["window.observe"]["count"] >= chunks
        assert stats["settle"]["count"] >= chunks
        assert "sweep.python" in stats
        for data in stats.values():
            assert data["count"] == sum(data["buckets"])
            assert data["total_seconds"] >= 0.0

    def test_thread_executor_spans_carry_shard_lanes(self):
        tracer, _ = self._run_service("thread", chunks=3)
        lanes = {span[3] for span in tracer.recorder.spans()}
        assert {"shard0", "shard1", "bus"} <= lanes
        # Shard spans fit inside the recorded timeline (no rebasing applied
        # to thread shards: they share this process's clock).
        stats = tracer.stage_stats()
        assert stats["route.bucket"]["count"] == 3 * 2

    def test_stage_stats_identical_across_executors(self):
        serial_stats = self._run_service("serial", chunks=3)[0].stage_stats()
        thread_stats = self._run_service("thread", chunks=3)[0].stage_stats()
        assert {
            stage: data["count"] for stage, data in serial_stats.items()
        } == {stage: data["count"] for stage, data in thread_stats.items()}

    def test_untraced_service_records_nothing(self):
        service = SurgeService([spec("a")], shards=1)
        with service:
            service.push_many(make_objects(64, seed=1))
            assert service.tracer is None
            assert service.stage_stats() == {}

    def test_slow_chunk_detector_captures_tree_and_depths(self, caplog):
        tracer = Tracer(enabled=True, slow_chunk_threshold=0.0)
        service = SurgeService([spec("a")], shards=1, tracer=tracer)
        with service, caplog.at_level(logging.WARNING, logger="repro.service"):
            for start in range(0, 120, 40):
                service.push_many(make_objects(120, seed=2)[start : start + 40])
        assert tracer.recorder.slow_chunk_count == 3
        captures = tracer.recorder.slow_chunks()
        assert [record["chunk_index"] for record in captures] == [0, 1, 2]
        for record in captures:
            assert record["wall_seconds"] > 0.0
            assert record["threshold_seconds"] == 0.0
            assert "queue_depth_chunks" in record["depths"]
            assert any(span[0] == "settle" for span in record["spans"])
        slow_logs = [r for r in caplog.records if "slow chunk" in r.getMessage()]
        assert len(slow_logs) == 3
        assert slow_logs[-1].slow_chunks == 3

    def test_recorder_survives_checkpoint_restore(self, tmp_path):
        tracer = Tracer(enabled=True)
        service = SurgeService(
            [spec("a")], shards=1, checkpoint_dir=tmp_path, tracer=tracer
        )
        with service:
            service.push_many(make_objects(80, seed=4))
            before = tracer.stage_stats()
            service.checkpoint()
        assert before["bus.publish"]["count"] >= 1

        fresh = Tracer(enabled=True)
        restored = SurgeService.restore(tmp_path, tracer=fresh)
        with restored:
            after = fresh.stage_stats()
            # The pre-crash latency history came back with the checkpoint
            # (the checkpoint span itself lands after the snapshot is
            # written, so it is deliberately not part of it).
            assert after["bus.publish"]["count"] == before["bus.publish"]["count"]
            assert after["settle"]["count"] == before["settle"]["count"]

    def test_restore_without_tracer_ignores_obs_snapshot(self, tmp_path):
        tracer = Tracer(enabled=True)
        service = SurgeService(
            [spec("a")], shards=1, checkpoint_dir=tmp_path, tracer=tracer
        )
        with service:
            service.push_many(make_objects(40, seed=5))
            service.checkpoint()
        restored = SurgeService.restore(tmp_path)
        with restored:
            assert restored.tracer is None
            assert restored.stage_stats() == {}


class TestBusyAccounting:
    def test_busy_never_exceeds_dispatch_wall(self):
        """Per-chunk sum of busy_seconds stays within the measured wall."""
        service = SurgeService(
            [spec("a"), spec("b", rect_width=2.0), spec("c", window_length=30.0)],
            shards=1,
        )
        objects = make_objects(240, seed=6)
        with service:
            for start in range(0, len(objects), 48):
                started = perf_counter()
                updates = service.push_many(objects[start : start + 48])
                wall = perf_counter() - started
                busy = sum(update.busy_seconds for update in updates)
                assert busy <= wall

    def test_shared_group_accounting_is_exact_under_fake_clock(self, monkeypatch):
        """Group fan-out charges routing + windowing + settle exactly once.

        Two queries share one window group (same window length, no
        keyword) but keep distinct detector units (different rectangles),
        so the chunk takes the group fan-out path: one ``observe_batch``
        for both, then one ``apply_batch`` each.  Under a clock that
        advances exactly 1 s per reading the attribution is deterministic:

        * routing reads the clock twice → 1 s spread over 2 pipelines;
        * the group's window ingest reads twice → 1 s spread over the
          2 group members;
        * each settle reads twice → 1 s charged to its own query;

        so each query's busy is 0.5 + 0.5 + 1.0 = 2.0 s and the shard
        total is exactly routing + observe + both settles = 4.0 s — no
        double-charge of the shared work, and nothing unattributed.
        """
        state = ShardState([spec("a"), spec("b", rect_width=2.0)])
        assert len(state._groups) == 1
        assert sum(len(unit) for unit in state._groups[0].units) == 2
        chunk = make_objects(10, seed=7)

        ticker = itertools.count(start=1.0, step=1.0)
        monkeypatch.setattr(_time, "perf_counter", lambda: next(ticker))
        updates = state.handle(("chunk", chunk, 0))

        by_query = {update.query_id: update for update in updates}
        assert by_query["a"].busy_seconds == pytest.approx(2.0)
        assert by_query["b"].busy_seconds == pytest.approx(2.0)
        assert sum(u.busy_seconds for u in updates) == pytest.approx(4.0)


class TestJsonLogging:
    def test_formatter_emits_fields_and_extras(self):
        formatter = JsonLogFormatter()
        logger = logging.getLogger("repro.test.obs")
        record = logger.makeRecord(
            "repro.test.obs", logging.WARNING, __file__, 1,
            "slow chunk %d", (7,), None, extra={"wall_seconds": 0.5},
        )
        payload = json.loads(formatter.format(record))
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test.obs"
        assert payload["event"] == "slow chunk 7"
        assert payload["wall_seconds"] == 0.5
        assert isinstance(payload["ts"], float)

    def test_formatter_includes_exceptions_and_never_raises(self):
        formatter = JsonLogFormatter()
        logger = logging.getLogger("repro.test.obs")
        import sys
        from pathlib import Path

        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logger.makeRecord(
                "repro.test.obs", logging.ERROR, __file__, 1,
                "failed", (), sys.exc_info(),
                extra={"path": Path("/tmp/x")},
            )
        payload = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in payload["exc"]
        assert payload["path"] == "/tmp/x"  # coerced via default=str

    def test_enable_json_logging_covers_the_repro_tree(self):
        stream = io.StringIO()
        handler = enable_json_logging(stream=stream)
        try:
            logging.getLogger("repro.service.service").warning(
                "quarantined record", extra={"reason": "nan_timestamp"}
            )
        finally:
            logging.getLogger("repro").removeHandler(handler)
        payload = json.loads(stream.getvalue().strip())
        assert payload["logger"] == "repro.service.service"
        assert payload["reason"] == "nan_timestamp"
