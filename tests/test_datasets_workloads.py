"""Unit tests for the experiment workload helpers."""

import pytest

pytest.importorskip("numpy", reason="the synthetic dataset generators need numpy (pip install .[fast])")

from repro.datasets.profiles import TAXI_PROFILE, UK_PROFILE, US_PROFILE
from repro.datasets.workloads import (
    ALPHA_SWEEP,
    ARRIVAL_RATE_SWEEP,
    K_SWEEP,
    RECT_MULTIPLIERS,
    default_query_for_profile,
    rect_size_multipliers,
    scaled_stream,
    window_sweep_values,
)
from repro.streams.sources import ListSource


class TestSweepConstants:
    def test_paper_parameter_grids(self):
        assert RECT_MULTIPLIERS == (0.5, 1.0, 2.0, 3.0)
        assert ALPHA_SWEEP == (0.1, 0.3, 0.5, 0.7, 0.9)
        assert K_SWEEP == (3, 5, 7, 9)
        assert ARRIVAL_RATE_SWEEP[0] == 2_000_000
        assert ARRIVAL_RATE_SWEEP[-1] == 10_000_000

    def test_window_sweeps_match_paper(self):
        assert window_sweep_values(TAXI_PROFILE) == (60.0, 300.0, 600.0, 1200.0, 1800.0)
        assert window_sweep_values(UK_PROFILE)[0] == 1800.0
        assert window_sweep_values(US_PROFILE)[-1] == 43_200.0

    def test_rect_size_multipliers_helper(self):
        assert rect_size_multipliers() == RECT_MULTIPLIERS


class TestDefaultQuery:
    def test_defaults_follow_profile(self):
        query = default_query_for_profile(UK_PROFILE)
        assert query.window_length == UK_PROFILE.default_window_seconds
        assert query.rect_width == pytest.approx(UK_PROFILE.default_rect_width)
        assert query.area == UK_PROFILE.extent
        assert query.k == 1

    def test_overrides(self):
        query = default_query_for_profile(
            TAXI_PROFILE, window_seconds=60.0, rect_multiplier=2.0, alpha=0.9, k=5
        )
        assert query.window_length == 60.0
        assert query.rect_width == pytest.approx(2.0 * TAXI_PROFILE.default_rect_width)
        assert query.alpha == 0.9
        assert query.k == 5


class TestScaledStream:
    def test_scaled_stream_size(self):
        stream = scaled_stream(TAXI_PROFILE, n_objects=150, seed=3, with_bursts=False)
        assert len(stream) == 150

    def test_scaled_stream_rate_override(self):
        stream = scaled_stream(
            TAXI_PROFILE, n_objects=500, seed=3, arrivals_per_day=86_400.0 * 10
        )
        source = ListSource(stream)
        # 10 objects per second target rate.
        assert source.arrival_rate(per=1.0) == pytest.approx(10.0, rel=0.01)

    def test_scaled_stream_objects_inside_extent(self):
        stream = scaled_stream(US_PROFILE, n_objects=100, seed=1)
        for obj in stream:
            assert US_PROFILE.extent.contains_xy(obj.x, obj.y)
