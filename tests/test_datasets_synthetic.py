"""Unit tests for the synthetic stream generator."""

import pytest

pytest.importorskip("numpy", reason="the synthetic dataset generators need numpy (pip install .[fast])")

from repro.datasets.profiles import TAXI_PROFILE, UK_PROFILE
from repro.datasets.synthetic import (
    BurstSpec,
    StreamConfig,
    default_bursts_for_profile,
    generate_profile_stream,
    generate_stream,
)
from repro.geometry.primitives import Rect
from repro.streams.sources import ListSource

EXTENT = Rect(0.0, 0.0, 10.0, 10.0)


def base_config(**overrides):
    defaults = dict(
        extent=EXTENT,
        n_objects=400,
        arrival_rate_per_hour=3600.0,
        seed=3,
    )
    defaults.update(overrides)
    return StreamConfig(**defaults)


class TestGenerateStream:
    def test_empty_request(self):
        assert generate_stream(base_config(n_objects=0)) == []

    def test_object_count(self):
        stream = generate_stream(base_config())
        assert len(stream) == 400

    def test_timestamps_are_sorted_and_start_after_start_time(self):
        stream = generate_stream(base_config(start_time=100.0))
        times = [o.timestamp for o in stream]
        assert times == sorted(times)
        assert times[0] >= 100.0

    def test_locations_within_extent(self):
        stream = generate_stream(base_config())
        for obj in stream:
            assert EXTENT.contains_xy(obj.x, obj.y)

    def test_weights_within_range_and_integer(self):
        stream = generate_stream(base_config(weight_range=(1.0, 100.0)))
        for obj in stream:
            assert 1.0 <= obj.weight <= 100.0
            assert obj.weight == int(obj.weight)

    def test_continuous_weights_option(self):
        stream = generate_stream(base_config(integer_weights=False, weight_range=(0.5, 2.0)))
        assert any(obj.weight != int(obj.weight) for obj in stream)

    def test_reproducible_with_same_seed(self):
        a = generate_stream(base_config(seed=9))
        b = generate_stream(base_config(seed=9))
        assert [(o.x, o.y, o.timestamp, o.weight) for o in a] == [
            (o.x, o.y, o.timestamp, o.weight) for o in b
        ]

    def test_different_seeds_differ(self):
        a = generate_stream(base_config(seed=1))
        b = generate_stream(base_config(seed=2))
        assert [(o.x, o.y) for o in a] != [(o.x, o.y) for o in b]

    def test_arrival_rate_close_to_target(self):
        stream = generate_stream(base_config(n_objects=2000, arrival_rate_per_hour=7200.0))
        rate = ListSource(stream).arrival_rate(per=3600.0)
        assert rate == pytest.approx(7200.0, rel=0.15)

    def test_object_ids_are_unique(self):
        stream = generate_stream(base_config())
        ids = [o.object_id for o in stream]
        assert len(ids) == len(set(ids))


class TestBursts:
    def test_burst_adds_tagged_objects_in_footprint(self):
        burst = BurstSpec(
            center_x=5.0,
            center_y=5.0,
            radius_x=0.2,
            radius_y=0.2,
            start_time=100.0,
            duration=200.0,
            rate_multiplier=5.0,
        )
        plain = generate_stream(base_config())
        with_burst = generate_stream(base_config(bursts=(burst,)))
        assert len(with_burst) > len(plain)
        burst_objects = [o for o in with_burst if o.attributes.get("burst")]
        assert burst_objects
        for obj in burst_objects:
            assert 100.0 <= obj.timestamp <= 300.0
            assert abs(obj.x - 5.0) <= 1.5  # within a few sigma (clipped)

    def test_default_bursts_for_profile(self):
        bursts = default_bursts_for_profile(TAXI_PROFILE, n_objects=1000, count=2)
        assert len(bursts) == 2
        stream_span = 1000 * TAXI_PROFILE.mean_interarrival_seconds
        for burst in bursts:
            assert TAXI_PROFILE.extent.contains_xy(burst.center_x, burst.center_y)
            # Bursts are capped so scaled-down streams are not swamped: never
            # longer than the profile's default window nor than ~5% of the
            # generated stream's span.
            assert 0.0 < burst.duration <= TAXI_PROFILE.default_window_seconds
            assert burst.duration <= 0.05 * stream_span + 1e-9
            assert 0.0 <= burst.start_time <= stream_span


class TestProfileStreams:
    def test_profile_stream_respects_extent_and_count(self):
        stream = generate_profile_stream(UK_PROFILE, n_objects=300, seed=5)
        assert len(stream) >= 300  # bursts add extra objects
        for obj in stream:
            assert UK_PROFILE.extent.contains_xy(obj.x, obj.y)

    def test_profile_stream_without_bursts(self):
        stream = generate_profile_stream(UK_PROFILE, n_objects=300, seed=5, with_bursts=False)
        assert len(stream) == 300
        assert not any(obj.attributes.get("burst") for obj in stream)

    def test_profile_stream_sorted(self):
        stream = generate_profile_stream(TAXI_PROFILE, n_objects=200, seed=6)
        times = [o.timestamp for o in stream]
        assert times == sorted(times)
