"""Unit tests for the per-cell state of Cell-CSPOT (bounds and Lemma 4)."""

import pytest

from repro.core.cells import CandidatePoint, CellRecord, CellState
from repro.geometry.primitives import Point, Rect
from repro.streams.objects import RectangleObject


def rect_obj(x, y, width=1.0, height=1.0, weight=1.0, object_id=0):
    return RectangleObject(
        x=x, y=y, width=width, height=height, timestamp=0.0, weight=weight, object_id=object_id
    )


@pytest.fixture
def cell():
    return CellState(bounds=Rect(0.0, 0.0, 1.0, 1.0))


class TestBoundMaintenance:
    def test_new_rectangle_raises_static_bound(self, cell):
        cell.add_new(rect_obj(0.5, 0.5, weight=4.0, object_id=1), current_length=2.0)
        assert cell.static_bound == pytest.approx(2.0)
        assert cell.dynamic_bound == float("inf")
        assert cell.upper_bound == pytest.approx(2.0)
        assert len(cell) == 1

    def test_dynamic_bound_updated_once_finite(self, cell):
        cell.add_new(rect_obj(0.5, 0.5, weight=4.0, object_id=1), current_length=2.0)
        cell.dynamic_bound = 1.0  # as if the cell had been searched
        cell.add_new(rect_obj(0.6, 0.6, weight=2.0, object_id=2), current_length=2.0)
        # Equation 3, NEW case: Ud increases by w/|Wc|.
        assert cell.dynamic_bound == pytest.approx(2.0)

    def test_grown_lowers_static_but_not_dynamic(self, cell):
        rect = rect_obj(0.5, 0.5, weight=4.0, object_id=1)
        cell.add_new(rect, current_length=2.0)
        cell.dynamic_bound = 2.0
        cell.mark_grown(rect, current_length=2.0)
        assert cell.static_bound == pytest.approx(0.0)
        assert cell.dynamic_bound == pytest.approx(2.0)
        assert cell.records[1].in_current is False

    def test_expired_raises_dynamic_by_alpha_fraction(self, cell):
        rect = rect_obj(0.5, 0.5, weight=4.0, object_id=1)
        cell.add_new(rect, current_length=2.0)
        cell.mark_grown(rect, current_length=2.0)
        cell.dynamic_bound = 1.0
        cell.remove_expired(rect, past_length=2.0, alpha=0.5)
        # Equation 3, EXPIRED case: Ud increases by alpha * w/|Wp|.
        assert cell.dynamic_bound == pytest.approx(2.0)
        assert cell.is_empty

    def test_grown_and_expired_of_unknown_rectangle_are_noops(self, cell):
        cell.mark_grown(rect_obj(0.5, 0.5, object_id=99), current_length=1.0)
        cell.remove_expired(rect_obj(0.5, 0.5, object_id=99), past_length=1.0, alpha=0.5)
        assert cell.is_empty
        assert cell.static_bound == pytest.approx(0.0)

    def test_upper_bound_is_min_of_both(self, cell):
        cell.static_bound = 5.0
        cell.dynamic_bound = 3.0
        assert cell.upper_bound == 3.0
        cell.dynamic_bound = 10.0
        assert cell.upper_bound == 5.0


class TestCandidateMaintenance:
    def _candidate(self, point=Point(0.5, 0.5), fc=2.0, fp=1.0, alpha=0.5):
        from repro.core.burst import burst_score

        return CandidatePoint(point=point, score=burst_score(fc, fp, alpha), fc=fc, fp=fp)

    def test_new_covering_candidate_with_positive_increase_stays_valid(self, cell):
        cell.candidate = self._candidate()
        rect = rect_obj(0.0, 0.0, weight=2.0, object_id=1)  # covers (0.5, 0.5)
        cell.update_candidate_for_new(rect, current_length=2.0, alpha=0.5)
        assert cell.candidate.valid
        assert cell.candidate.fc == pytest.approx(3.0)
        assert cell.candidate.score == pytest.approx(0.5 * 2.0 + 0.5 * 3.0)

    def test_new_not_covering_candidate_invalidates(self, cell):
        cell.candidate = self._candidate()
        rect = rect_obj(5.0, 5.0, weight=2.0, object_id=1)
        cell.update_candidate_for_new(rect, current_length=2.0, alpha=0.5)
        assert not cell.candidate.valid

    def test_new_covering_but_non_positive_increase_invalidates(self, cell):
        cell.candidate = self._candidate(fc=1.0, fp=2.0)
        rect = rect_obj(0.0, 0.0, weight=2.0, object_id=1)
        cell.update_candidate_for_new(rect, current_length=2.0, alpha=0.5)
        assert not cell.candidate.valid

    def test_grown_not_covering_candidate_stays_valid(self, cell):
        cell.candidate = self._candidate()
        rect = rect_obj(5.0, 5.0, object_id=1)
        cell.update_candidate_for_grown(rect)
        assert cell.candidate.valid

    def test_grown_covering_candidate_invalidates(self, cell):
        cell.candidate = self._candidate()
        rect = rect_obj(0.0, 0.0, object_id=1)
        cell.update_candidate_for_grown(rect)
        assert not cell.candidate.valid

    def test_expired_covering_with_positive_increase_stays_valid(self, cell):
        cell.candidate = self._candidate(fc=3.0, fp=1.0)
        rect = rect_obj(0.0, 0.0, weight=2.0, object_id=1)
        cell.update_candidate_for_expired(rect, past_length=2.0, alpha=0.5)
        assert cell.candidate.valid
        assert cell.candidate.fp == pytest.approx(0.0)
        assert cell.candidate.score == pytest.approx(0.5 * 3.0 + 0.5 * 3.0)

    def test_expired_not_covering_invalidates(self, cell):
        cell.candidate = self._candidate()
        rect = rect_obj(5.0, 5.0, object_id=1)
        cell.update_candidate_for_expired(rect, past_length=2.0, alpha=0.5)
        assert not cell.candidate.valid

    def test_updates_on_missing_candidate_are_noops(self, cell):
        rect = rect_obj(0.0, 0.0, object_id=1)
        cell.update_candidate_for_new(rect, 1.0, 0.5)
        cell.update_candidate_for_grown(rect)
        cell.update_candidate_for_expired(rect, 1.0, 0.5)
        assert cell.candidate is None

    def test_invalidate_candidate(self, cell):
        cell.candidate = self._candidate()
        cell.invalidate_candidate()
        assert not cell.has_valid_candidate()

    def test_has_valid_candidate(self, cell):
        assert not cell.has_valid_candidate()
        cell.candidate = self._candidate()
        assert cell.has_valid_candidate()


class TestDynamicScoreSyncInvariant:
    def test_bound_and_candidate_move_in_lockstep(self, cell):
        """Whenever the candidate stays valid, Ud must equal its score.

        This is the invariant Cell-CSPOT's early termination relies on.
        """
        alpha = 0.5
        current_length = past_length = 2.0
        covering = rect_obj(0.0, 0.0, weight=3.0, object_id=1)
        cell.add_new(covering, current_length)
        # Simulate a search: candidate == cell optimum, Ud == its score.
        cell.candidate = CandidatePoint(
            point=Point(0.5, 0.5), score=1.5, fc=1.5, fp=0.0, valid=True
        )
        cell.dynamic_bound = 1.5

        addition = rect_obj(0.1, 0.1, weight=2.0, object_id=2)
        cell.add_new(addition, current_length)
        cell.update_candidate_for_new(addition, current_length, alpha)
        assert cell.candidate.valid
        assert cell.dynamic_bound == pytest.approx(cell.candidate.score)

        cell.mark_grown(covering, current_length)
        cell.update_candidate_for_grown(covering)
        # Covering grown event invalidates; the invariant only applies while valid.
        assert not cell.candidate.valid
