"""Unit and structural tests for the shared-work execution plan.

``tests/test_service_differential.py`` proves the shared plan changes no
answer; this module pins the *mechanics* that make that safe:

* the inverted routing index routes exactly the objects the per-query
  keyword predicate accepts — multi-keyword objects land in every matching
  bucket once, duplicated keywords on one object do not double-route, and
  unrouted keywords get no bucket at all;
* window groups and detector units share the objects they are supposed to
  share (``is``-level aliasing), and *only* those: different window
  lengths split groups, different rectangles split units within a group,
  and a query registered mid-stream never adopts a group's history (the
  registration-epoch rule);
* group/unit membership survives ``remove_query`` (including removing a
  unit leader) and a checkpoint/restore cycle under either plan —
  restoring re-aliases or clones apart as the restoring shard's plan
  demands;
* the settle-free fast path for empty routes is taken (``chunks_skipped``)
  and still reports the correct result;
* ``make_query_grid(group_aligned=True)`` produces the documented explicit
  sharing factors, and the default grid is unchanged.
"""

from __future__ import annotations

import random

import pytest

from repro.core.query import SurgeQuery
from repro.datasets.keywords import keyword_predicate
from repro.service import QuerySpec, SurgeService, make_query_grid
from repro.service.shards import ShardState
from repro.streams.objects import SpatialObject

KEYWORDS = ("concert", "parade", "zika")


def make_spec(query_id, keyword=None, window=20.0, rect=1.0, algorithm="ccs", **options):
    return QuerySpec(
        query_id=query_id,
        query=SurgeQuery(rect_width=rect, rect_height=rect, window_length=window),
        algorithm=algorithm,
        keyword=keyword,
        backend="python" if algorithm in ("ccs", "kccs") else None,
        options=options,
    )


def make_object(index, t, keywords=()):
    return SpatialObject(
        x=0.5 + (index % 7) * 0.3,
        y=0.5 + (index % 5) * 0.4,
        timestamp=t,
        weight=1.0 + index % 3,
        object_id=index,
        attributes={"keywords": tuple(keywords)} if keywords else {},
    )


def make_keyword_stream(count=120, seed=13):
    rng = random.Random(seed)
    stream, t = [], 0.0
    for index in range(count):
        t += rng.uniform(0.1, 0.6)
        roll = rng.random()
        if roll < 0.15:
            keywords = ()
        elif roll < 0.25:
            # Multi-keyword objects, sometimes with duplicates, sometimes
            # with keywords no query routes on.
            keywords = (
                rng.choice(KEYWORDS),
                rng.choice(KEYWORDS),
                "unrouted-topic",
            )
        else:
            keywords = (rng.choice(KEYWORDS),)
        stream.append(make_object(index, t, keywords))
    return stream


# ---------------------------------------------------------------------------
# Inverted routing index
# ---------------------------------------------------------------------------
class TestInvertedRouting:
    def test_buckets_equal_predicate_filters(self):
        shard = ShardState(
            [make_spec("a", "concert"), make_spec("b", "parade"), make_spec("c", None)],
            shared_plan=True,
        )
        chunk = make_keyword_stream()
        buckets = shard._route_chunk(chunk)
        for keyword in ("concert", "parade"):
            predicate = keyword_predicate(keyword)
            assert buckets.get(keyword, []) == [o for o in chunk if predicate(o)]
        # Match-all queries take the chunk itself; no bucket is built for
        # them, nor for keywords nobody routes on.
        assert "unrouted-topic" not in buckets
        assert set(buckets) <= {"concert", "parade"}

    def test_duplicate_keywords_route_once(self):
        shard = ShardState([make_spec("a", "concert")], shared_plan=True)
        obj = make_object(0, 1.0, ("concert", "concert", "parade"))
        buckets = shard._route_chunk([obj])
        assert buckets["concert"] == [obj]

    def test_bare_string_keywords_route_like_the_predicate(self):
        """A str 'keywords' attribute must route identically under both plans.

        The file loaders normalise keywords to tuples, but the public API
        accepts any SpatialObject; the per-query predicate then evaluates
        ``keyword in <str>`` — *substring* membership — and the inverted
        router must replicate exactly that, or the plans would answer
        differently for the same input.
        """
        shard = ShardState(
            [make_spec("a", "concert"), make_spec("b", "parade")],
            shared_plan=True,
        )
        objs = [
            SpatialObject(
                x=1.0, y=1.0, timestamp=float(i), weight=1.0, object_id=i,
                attributes={"keywords": raw},
            )
            for i, raw in enumerate(
                ["concert-night", "parade", "concerto", "unrelated", ""]
            )
        ]
        buckets = shard._route_chunk(objs)
        for keyword in ("concert", "parade"):
            predicate = keyword_predicate(keyword)
            assert buckets.get(keyword, []) == [o for o in objs if predicate(o)]
        # Substring semantics really did fire: "concerto" contains "concert".
        assert [o.object_id for o in buckets["concert"]] == [0, 2]
        # And end to end: both plans produce identical updates.
        results = {}
        for shared in (False, True):
            with SurgeService(
                [make_spec("a", "concert"), make_spec("b", "parade")],
                shared_plan=shared,
            ) as service:
                (update_a, update_b) = service.push_many(objs)
                results[shared] = (
                    update_a.objects_routed,
                    update_b.objects_routed,
                    update_a.result and update_a.result.score,
                    update_b.result and update_b.result.score,
                )
        assert results[True] == results[False]
        assert results[True][0] == 2

    def test_no_routed_keywords_builds_nothing(self):
        shard = ShardState([make_spec("all", None)], shared_plan=True)
        assert shard._route_chunk(make_keyword_stream(20)) == {}

    def test_routed_counts_match_unshared_plan(self):
        stream = make_keyword_stream()
        specs = [
            make_spec("a", "concert"),
            make_spec("b", "concert", window=35.0),
            make_spec("c", "parade"),
            make_spec("d", None),
        ]
        counts = {}
        for shared in (False, True):
            with SurgeService(specs, shared_plan=shared) as service:
                for start in range(0, len(stream), 17):
                    service.push_many(stream[start : start + 17])
                counts[shared] = {
                    qid: service.bus.stats(qid).objects_routed
                    for qid in service.query_ids
                }
        assert counts[True] == counts[False]
        predicate = keyword_predicate("concert")
        assert counts[True]["a"] == sum(1 for o in stream if predicate(o))
        assert counts[True]["d"] == len(stream)


# ---------------------------------------------------------------------------
# Plan structure: who shares what
# ---------------------------------------------------------------------------
class TestPlanStructure:
    def test_same_keyword_and_window_share_one_pair(self):
        shard = ShardState(
            [
                make_spec("a", "concert", rect=1.0),
                make_spec("b", "concert", rect=1.5),  # same group, own unit
                make_spec("c", "concert", window=40.0),  # different window
                make_spec("d", "parade"),  # different keyword
            ],
            shared_plan=True,
        )
        windows = {qid: p.monitor.windows for qid, p in shard.pipelines.items()}
        assert windows["a"] is windows["b"]
        assert windows["a"] is not windows["c"]
        assert windows["a"] is not windows["d"]
        # Different rectangles: shared windows but private monitors.
        assert shard.pipelines["a"].monitor is not shard.pipelines["b"].monitor

    def test_identical_specs_share_the_monitor(self):
        shard = ShardState(
            [
                make_spec("a", "concert"),
                make_spec("b", "concert"),  # byte-identical spec, new id
                make_spec("c", "concert", algorithm="gaps"),  # same windows only
            ],
            shared_plan=True,
        )
        assert shard.pipelines["a"].monitor is shard.pipelines["b"].monitor
        assert shard.pipelines["a"].monitor is not shard.pipelines["c"].monitor
        assert (
            shard.pipelines["a"].monitor.windows
            is shard.pipelines["c"].monitor.windows
        )

    def test_detector_unit_key_identity_and_opt_out(self):
        from repro.service.shards import _detector_unit_key

        a, b = make_spec("a", "concert"), make_spec("b", "concert")
        # Equal specs (ids aside) collapse to the same equality-compared
        # key; any difference that shapes the monitor splits it.
        assert _detector_unit_key(a) == _detector_unit_key(b)
        assert _detector_unit_key(a) != _detector_unit_key(
            make_spec("c", "concert", rect=1.5)
        )
        assert _detector_unit_key(a) != _detector_unit_key(
            make_spec("d", "concert", algorithm="gaps")
        )
        # Unhashable option values decline detector sharing outright
        # (returning None) rather than guessing at equality.
        object.__setattr__(a, "options", {"probe": [1, 2]})
        assert _detector_unit_key(a) is None

    def test_unshared_plan_shares_nothing(self):
        shard = ShardState(
            [make_spec("a", "concert"), make_spec("b", "concert")],
            shared_plan=False,
        )
        assert shard.pipelines["a"].monitor is not shard.pipelines["b"].monitor
        assert (
            shard.pipelines["a"].monitor.windows
            is not shard.pipelines["b"].monitor.windows
        )

    def test_mid_stream_add_starts_its_own_group(self):
        shard = ShardState([make_spec("old", "concert")], shared_plan=True)
        stream = make_keyword_stream(40)
        shard.handle(("chunk", stream[:20], 0))
        shard.add(make_spec("late", "concert"))
        old, late = shard.pipelines["old"], shard.pipelines["late"]
        # The late query must not adopt the old group's window history...
        assert late.monitor.windows is not old.monitor.windows
        assert late.monitor is not old.monitor
        assert len(late.monitor.windows) == 0
        # ...but two queries registered back to back (same epoch) share.
        shard.add(make_spec("late2", "concert"))
        assert (
            shard.pipelines["late2"].monitor is shard.pipelines["late"].monitor
        )

    def test_unknown_epoch_pipelines_never_share(self):
        """Pipelines whose registration epoch is unknown must not alias.

        A pre-epoch (legacy) snapshot cannot distinguish a stream-start
        query from a mid-stream registration, so defaulting its epoch and
        grouping it would alias window history the late query never saw.
        """
        stream = make_keyword_stream(50)
        shard = ShardState([make_spec("old", "concert")], shared_plan=True)
        shard.handle(("chunk", stream[:30], 0))
        shard.add(make_spec("late", "concert"))
        # Simulate the legacy round-trip: epochs were never recorded.
        for pipeline in shard.pipelines.values():
            pipeline.epoch = None
        shard._rebuild_plan()
        old, late = shard.pipelines["old"], shard.pipelines["late"]
        assert late.monitor is not old.monitor
        assert late.monitor.windows is not old.monitor.windows
        assert len(late.monitor.windows) == 0
        # Both still process chunks (every pipeline sits in some group).
        updates = shard.handle(("chunk", stream[30:], 1))
        assert {u.query_id for u in updates} == {"old", "late"}

    def test_setstate_marks_missing_epoch_unknown(self):
        from repro.service.shards import QueryPipeline

        pipeline = QueryPipeline(make_spec("q", "concert"), epoch=7)
        _, slots = pipeline.__reduce_ex__(2)[2]
        legacy = {
            key: value
            for key, value in slots.items()
            if key not in ("epoch", "chunks_skipped", "last_result")
        }
        resurrected = QueryPipeline.__new__(QueryPipeline)
        resurrected.__setstate__((None, legacy))
        assert resurrected.epoch is None
        assert resurrected.chunks_skipped == 0
        # A recorded epoch round-trips untouched.
        intact = QueryPipeline.__new__(QueryPipeline)
        intact.__setstate__((None, dict(slots)))
        assert intact.epoch == 7

    def test_remove_unit_leader_keeps_followers_running(self):
        specs = [make_spec(q, "concert") for q in ("a", "b", "c")]
        stream = make_keyword_stream(60)
        with SurgeService(specs, shared_plan=True) as service:
            service.push_many(stream[:30])
            service.remove_query("a")  # the unit leader
            service.push_many(stream[30:])
            shared_results = {
                qid: (r.score, r.region) if r else None
                for qid, r in service.results().items()
            }
        with SurgeService(specs, shared_plan=False) as service:
            service.push_many(stream[:30])
            service.remove_query("a")
            service.push_many(stream[30:])
            unshared_results = {
                qid: (r.score, r.region) if r else None
                for qid, r in service.results().items()
            }
        assert shared_results == unshared_results
        assert set(shared_results) == {"b", "c"}


# ---------------------------------------------------------------------------
# Restore re-normalisation (shard level)
# ---------------------------------------------------------------------------
class TestRestoreNormalisation:
    STREAM = None  # one stream, split into a head and a replayable tail

    def checkpoint_roundtrip(self, tmp_path, from_plan, to_plan):
        if TestRestoreNormalisation.STREAM is None:
            TestRestoreNormalisation.STREAM = make_keyword_stream(130)
        source = ShardState(
            [
                make_spec("a", "concert"),
                make_spec("b", "concert"),
                make_spec("c", "concert", rect=1.5),
            ],
            shared_plan=from_plan,
        )
        source.handle(("chunk", self.STREAM[:50], 0))
        path = tmp_path / "shard.ckpt"
        source.checkpoint(str(path))
        target = ShardState([], shared_plan=to_plan)
        assert target.restore(str(path)) == ["a", "b", "c"]
        return source, target

    def test_shared_snapshot_unshares_on_plan_off_restore(self, tmp_path):
        _, target = self.checkpoint_roundtrip(tmp_path, True, False)
        a, b, c = (target.pipelines[q] for q in "abc")
        assert a.monitor is not b.monitor
        assert a.monitor.windows is not b.monitor.windows
        assert a.monitor.windows is not c.monitor.windows
        # The clones are bit-identical: same window contents and clocks.
        assert a.monitor.window_state() == b.monitor.window_state()
        assert a.monitor.window_state() == c.monitor.window_state()
        assert [r and r.score for r in (a.last_result, b.last_result)][0] == (
            b.last_result and b.last_result.score
        )

    def test_unshared_snapshot_realiases_on_plan_on_restore(self, tmp_path):
        _, target = self.checkpoint_roundtrip(tmp_path, False, True)
        a, b, c = (target.pipelines[q] for q in "abc")
        assert a.monitor is b.monitor
        assert a.monitor.windows is c.monitor.windows
        assert c.monitor is not a.monitor

    @pytest.mark.parametrize(
        "from_plan,to_plan",
        [(True, True), (True, False), (False, True), (False, False)],
        ids=["s-s", "s-u", "u-s", "u-u"],
    )
    def test_roundtrip_continues_identically(self, tmp_path, from_plan, to_plan):
        source, target = self.checkpoint_roundtrip(tmp_path, from_plan, to_plan)
        tail = self.STREAM[50:]
        got = target.handle(("chunk", tail, 1))
        want = source.handle(("chunk", tail, 1))
        assert [
            (u.query_id, u.objects_routed, u.result and u.result.score) for u in got
        ] == [
            (u.query_id, u.objects_routed, u.result and u.result.score) for u in want
        ]


# ---------------------------------------------------------------------------
# Settle-free fast path for empty routes
# ---------------------------------------------------------------------------
class TestSkipFastPath:
    @pytest.mark.parametrize("shared_plan", [True, False], ids=["shared", "unshared"])
    def test_unmatched_chunks_skip_the_settle(self, shared_plan):
        shard = ShardState(
            [make_spec("hit", "concert"), make_spec("miss", "never-tagged")],
            shared_plan=shared_plan,
        )
        stream = make_keyword_stream(60)
        n_chunks = 0
        for start in range(0, len(stream), 15):
            shard.handle(("chunk", stream[start : start + 15], n_chunks))
            n_chunks += 1
        miss = shard.pipelines["miss"]
        assert miss.chunks_skipped == n_chunks
        assert miss.chunks_processed == n_chunks
        assert miss.objects_routed == 0
        assert miss.last_result is None
        # The fast path is still accounted: busy time was measured, not
        # fabricated — it only has to be non-negative and tiny.
        assert 0.0 <= miss.busy_seconds < 1.0
        hit = shard.pipelines["hit"]
        assert hit.chunks_skipped < n_chunks
        assert hit.objects_routed > 0

    def test_skipped_chunk_reports_the_previous_result(self):
        spec = make_spec("q", "concert")
        stream = [
            make_object(i, float(i + 1), ("concert",) if i < 10 else ("parade",))
            for i in range(20)
        ]
        with SurgeService([spec], shared_plan=True) as service:
            (matched_update,) = service.push_many(stream[:10])
            (skipped_update,) = service.push_many(stream[10:])
        assert matched_update.objects_routed == 10
        assert skipped_update.objects_routed == 0
        # Nothing routed, clock unmoved: the previous settled result object
        # is reported as-is.
        assert skipped_update.result is matched_update.result


# ---------------------------------------------------------------------------
# make_query_grid(group_aligned=...)
# ---------------------------------------------------------------------------
class TestGroupAlignedGrid:
    KEYWORDS = ("k0", "k1", "k2", "k3")

    def sharing_factors(self, specs):
        pairs = {(s.keyword, s.query.window_length) for s in specs}
        triples = {(s.keyword, s.query.window_length, s.query.rect_width) for s in specs}
        return len(specs) / len(pairs), len(specs) / len(triples)

    def test_aligned_grid_enumerates_the_product(self):
        # 4 keywords × 3 rects × 2 windows = 24 distinct triples; at 48
        # queries every spec has exactly one duplicate.
        specs = make_query_grid(
            48,
            keywords=self.KEYWORDS,
            window_multipliers=(1.0, 2.0),
            group_aligned=True,
        )
        window_factor, unit_factor = self.sharing_factors(specs)
        assert window_factor == 48 / 8  # 4 keywords × 2 windows co-occur fully
        assert unit_factor == 2.0
        # Rectangles vary fastest: the first three specs differ only in rect.
        assert {s.keyword for s in specs[:3]} == {"k0"}
        assert len({s.query.rect_width for s in specs[:3]}) == 3

    def test_aligned_prefix_covers_every_pair_before_repeating(self):
        specs = make_query_grid(
            24, keywords=self.KEYWORDS, window_multipliers=(1.0, 2.0),
            group_aligned=True,
        )
        # 24 = 4 × 3 × 2: all triples distinct, no detector sharing yet.
        _, unit_factor = self.sharing_factors(specs)
        assert unit_factor == 1.0

    def test_default_grid_is_unchanged(self):
        aligned = make_query_grid(12, keywords=self.KEYWORDS, group_aligned=True)
        default = make_query_grid(12, keywords=self.KEYWORDS)
        legacy = make_query_grid(12, keywords=self.KEYWORDS)
        assert default == legacy
        assert aligned != default
        # Independent cycles: keyword advances every query.
        assert [s.keyword for s in default[:5]] == ["k0", "k1", "k2", "k3", "k0"]

    def test_grid_ids_and_validation(self):
        specs = make_query_grid(3, keywords=self.KEYWORDS, group_aligned=True)
        assert [s.query_id for s in specs] == ["q000", "q001", "q002"]
        with pytest.raises(ValueError, match="positive"):
            make_query_grid(0, group_aligned=True)


# ---------------------------------------------------------------------------
# Shared plan under advance_time (service level)
# ---------------------------------------------------------------------------
def test_advance_time_matches_unshared_plan():
    specs = [
        make_spec("a", "concert"),
        make_spec("b", "concert"),
        make_spec("c", "concert", rect=1.5),
        make_spec("d", None, window=10.0),
    ]
    # Chunks of ~10s of arrivals separated by 50s quiet gaps, so the
    # between-chunk advance_time (to 22s past the chunk's end) both expires
    # window-10/20 objects *and* stays earlier than the next chunk's first
    # arrival — every advance crosses real deadlines without breaking
    # timestamp order.
    rng = random.Random(31)
    chunks = []
    for chunk_index in range(4):
        base = chunk_index * 60.0
        times = sorted(rng.uniform(0.0, 10.0) for _ in range(18))
        chunks.append(
            [
                make_object(
                    chunk_index * 18 + i, base + t, (rng.choice(KEYWORDS),)
                )
                for i, t in enumerate(times)
            ]
        )
    traces = {}
    for shared in (False, True):
        trace = []
        with SurgeService(specs, shared_plan=shared) as service:
            for chunk in chunks:
                service.push_many(chunk)
                service.advance_time(chunk[-1].timestamp + 22.0)
                trace.append(
                    {
                        qid: (r.score, r.region) if r is not None else None
                        for qid, r in service.results().items()
                    }
                )
        traces[shared] = trace
    assert traces[True] == traces[False]
